package relation

// Hash indexes and the memo table that caches them (together with column
// statistics and caller-provided structures such as the generic join's
// tries) per relation. Everything here is keyed by the relation's size, so
// an insert implicitly invalidates and the next reader rebuilds.

import (
	"encoding/binary"
	"fmt"
)

type memoEntry struct {
	v    any
	size int // relation size the entry was built at
}

// delegate returns the relation whose storage r still shares — Clone and
// Rename borrow their parent's columns until first write — so memoized
// statistics, indexes and tries are built once per stored row set, not once
// per name. It returns nil when r owns its storage or has diverged.
func (r *Relation) delegate() *Relation {
	if p := r.parent; p != nil && r.shared && p.Size() == r.n {
		return p
	}
	return nil
}

// Memo returns the value cached under key, calling build when the key is
// missing or the relation has grown since it was cached. Builds are
// single-flight per key: concurrent callers of a missing entry run build
// exactly once and share its result (waiters block until the builder
// stores). Duplicate builds used to be tolerated as harmless races, but a
// build may now carry side effects — partition builds register governed
// shards with a spill governor, and a losing duplicate would stay
// registered (accounted and on disk) with no owner. build runs outside
// the lock and may use the relation's read API, but must not Memo the
// same key recursively.
func (r *Relation) Memo(key string, build func() any) any {
	if p := r.delegate(); p != nil {
		return p.Memo(key, build)
	}
	for {
		r.mu.Lock()
		if e, ok := r.memos[key]; ok && e.size == r.n {
			r.mu.Unlock()
			return e.v
		}
		if ch, busy := r.building[key]; busy {
			r.mu.Unlock()
			<-ch // wait for the in-flight builder, then re-check
			continue
		}
		ch := make(chan struct{})
		if r.building == nil {
			r.building = make(map[string]chan struct{})
		}
		r.building[key] = ch
		r.mu.Unlock()

		stored := false
		defer func() {
			// On a build panic, release waiters without storing so they
			// retry (or propagate their own panic) instead of hanging.
			if !stored {
				r.mu.Lock()
				delete(r.building, key)
				r.mu.Unlock()
				close(ch)
			}
		}()
		v := build()
		r.mu.Lock()
		if r.memos == nil {
			r.memos = make(map[string]memoEntry)
		}
		r.memos[key] = memoEntry{v: v, size: r.n}
		delete(r.building, key)
		r.mu.Unlock()
		stored = true
		close(ch)
		return v
	}
}

// peekMemo returns the value cached under key without building it —
// callers that can substitute a cheaper approximation (DistinctEstimate)
// use the exact memo when it is already paid for and fall back otherwise.
func (r *Relation) peekMemo(key string) (any, bool) {
	if p := r.delegate(); p != nil {
		return p.peekMemo(key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.memos[key]
	if ok && e.size == r.n {
		return e.v, true
	}
	return nil, false
}

// Index is a hash index over a column list: the fixed-width packing of a
// row's values in those columns maps to every matching row.
type Index struct {
	cols []int
	rows map[string][]int32
}

// Cols returns the indexed column positions.
func (ix *Index) Cols() []int { return ix.cols }

// Len returns the number of distinct keys.
func (ix *Index) Len() int { return len(ix.rows) }

// Rows returns the rows whose indexed columns pack to key (as built by
// Relation.KeyFor or Tuple.Key over the same columns). The slice is the
// index's storage; treat it as read-only.
func (ix *Index) Rows(key []byte) []int32 { return ix.rows[string(key)] }

// Has reports whether any row matches the key.
func (ix *Index) Has(key []byte) bool {
	_, ok := ix.rows[string(key)]
	return ok
}

// Index returns the hash index over the given columns, built lazily and
// memoized alongside the relation's statistics (rebuilt after inserts,
// shared with renames and clones).
func (r *Relation) Index(cols ...int) *Index {
	for _, c := range cols {
		if c < 0 || c >= r.Arity() {
			panic(fmt.Sprintf("relation %s: index column %d out of range", r.Name, c))
		}
	}
	key := "index:" + string(appendColsKey(nil, cols))
	cs := append([]int(nil), cols...)
	return r.Memo(key, func() any {
		// Pin for the build: one reload at most, and the index scan must
		// not race the spill governor parking the columns row by row.
		r.Pin()
		defer r.Unpin()
		ix := &Index{cols: cs, rows: make(map[string][]int32, r.n)}
		var buf []byte
		for i := 0; i < r.n; i++ {
			buf = r.keyAt(buf[:0], i, cs)
			ix.rows[string(buf)] = append(ix.rows[string(buf)], int32(i))
		}
		return ix
	}).(*Index)
}

// appendColsKey appends a packing of column positions to buf (memo keys).
func appendColsKey(buf []byte, cols []int) []byte {
	for _, c := range cols {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	return buf
}

// probeBlock is the number of probe-side rows whose keys MatchingRows packs
// into one contiguous buffer before probing: the key-build loop and the map
// probe loop each stay tight, amortizing the per-row buffer bookkeeping of
// the row-at-a-time probe it replaces.
const probeBlock = 512

// MatchingRows probes the index with rows of r keyed on cols (one probe key
// per row, same packing as the index side) and appends to dst the row
// indices with at least one match. Probing is batched: keys for a block of
// rows are packed into one buffer, then the block is probed in a second
// tight loop. cols must have the index's column count.
func (ix *Index) MatchingRows(r *Relation, cols []int, dst []int32) []int32 {
	if len(cols) != len(ix.cols) {
		panic(fmt.Sprintf("relation %s: probing %d columns against a %d-column index", r.Name, len(cols), len(ix.cols)))
	}
	r.Pin()
	defer r.Unpin()
	w := 4 * len(cols) // bytes per packed key
	buf := make([]byte, 0, probeBlock*w)
	for lo := 0; lo < r.n; lo += probeBlock {
		hi := lo + probeBlock
		if hi > r.n {
			hi = r.n
		}
		buf = buf[:0]
		for i := lo; i < hi; i++ {
			buf = r.keyAt(buf, i, cols)
		}
		for i := lo; i < hi; i++ {
			off := (i - lo) * w
			if _, ok := ix.rows[string(buf[off:off+w])]; ok {
				dst = append(dst, int32(i))
			}
		}
	}
	return dst
}

// KeyFor appends the packing of t's values in the given columns to buf —
// the probe-side counterpart of Index.
func KeyFor(buf []byte, t Tuple, cols []int) []byte {
	for _, c := range cols {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t[c]))
	}
	return buf
}

// HashJoin joins r and s on the given position pairs (r position, s
// position), keeping all columns of both relations. The smaller side's
// memoized hash index is probed with fixed-width keys; the output needs no
// dedup pass because distinct row pairs concatenate to distinct rows.
func HashJoin(r, s *Relation, pairs [][2]int) (*Relation, error) {
	for _, p := range pairs {
		if p[0] < 0 || p[0] >= r.Arity() || p[1] < 0 || p[1] >= s.Arity() {
			return nil, fmt.Errorf("relation: join positions %v out of range", p)
		}
	}
	// Index the smaller relation.
	build, probe := r, s
	buildSide := 0
	if s.Size() < r.Size() {
		build, probe = s, r
		buildSide = 1
	}
	buildCols := make([]int, len(pairs))
	probeCols := make([]int, len(pairs))
	for i, p := range pairs {
		buildCols[i] = p[buildSide]
		probeCols[i] = p[1-buildSide]
	}
	ix := build.Index(buildCols...)

	// Pin both sides for the probe loop: rows of each are appended to the
	// output tuple by tuple, and the loop must not pay a reload per block.
	r.Pin()
	defer r.Unpin()
	s.Pin()
	defer s.Unpin()
	out := New(r.Name+"_j_"+s.Name, concatAttrs(r, s)...)
	out.dict = r.dict
	nt := make(Tuple, 0, r.Arity()+s.Arity())
	var buf []byte
	for j := 0; j < probe.n; j++ {
		buf = probe.keyAt(buf[:0], j, probeCols)
		for _, i := range ix.Rows(buf) {
			ri, sj := int(i), j
			if buildSide == 1 {
				ri, sj = j, int(i)
			}
			nt = r.AppendRow(nt[:0], ri)
			nt = s.AppendRow(nt, sj)
			out.appendRowUnchecked(nt)
		}
	}
	return out, nil
}

// EquiJoin is HashJoin — the name the seed used; kept as the generic
// equi-join entry point (the sort-merge variant lives in sortmerge.go).
func EquiJoin(r, s *Relation, pairs [][2]int) (*Relation, error) {
	return HashJoin(r, s, pairs)
}

// Semijoin returns r ⋉ s: the tuples of r that join with at least one tuple
// of s on their shared attribute names. With no shared attributes every
// tuple of r joins (unless s is empty), so r itself is returned.
func Semijoin(r, s *Relation) (*Relation, error) {
	rCols, sCols := SharedCols(r, s)
	return SemijoinOn(r, s, rCols, sCols)
}

// SemijoinOn is Semijoin on explicit column pairs: rCols[k] of r joins
// sCols[k] of s. It is the position-pure form the sharded operators use —
// partition shards may carry memoized attribute names from a sibling view,
// so name matching happens once at the routing layer. Empty column lists
// degrade like Semijoin's no-shared-attribute case.
func SemijoinOn(r, s *Relation, rCols, sCols []int) (*Relation, error) {
	if len(rCols) != len(sCols) {
		return nil, fmt.Errorf("relation: semijoin on %d vs %d columns", len(rCols), len(sCols))
	}
	for k := range rCols {
		if rCols[k] < 0 || rCols[k] >= r.Arity() || sCols[k] < 0 || sCols[k] >= s.Arity() {
			return nil, fmt.Errorf("relation: semijoin positions (%d,%d) out of range", rCols[k], sCols[k])
		}
	}
	if len(rCols) == 0 {
		if s.Size() == 0 {
			return New(r.Name+"_sj", r.Attrs...), nil
		}
		return r, nil
	}
	ix := s.Index(sCols...)
	rows := ix.MatchingRows(r, rCols, nil)
	return r.Gather(r.Name+"_sj", rows), nil
}

// SemijoinOnParts is SemijoinOn with the s side given as a union of parts —
// the shards of a partitioned view — without concatenating them first: a
// row of r survives when it matches in ANY part, so each part's memoized
// index is probed in turn and the match sets merge into one row mask. Row
// order (ascending over r) and output schema are exactly SemijoinOn's over
// the flattened union. Empty column lists degrade like SemijoinOn: r itself
// unless every part is empty.
func SemijoinOnParts(r *Relation, parts []*Relation, rCols, sCols []int) (*Relation, error) {
	live := parts[:0:0]
	for _, p := range parts {
		if p.Size() > 0 {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		if len(rCols) != len(sCols) {
			return nil, fmt.Errorf("relation: semijoin on %d vs %d columns", len(rCols), len(sCols))
		}
		return New(r.Name+"_sj", r.Attrs...), nil
	case 1:
		return SemijoinOn(r, live[0], rCols, sCols)
	}
	if len(rCols) != len(sCols) {
		return nil, fmt.Errorf("relation: semijoin on %d vs %d columns", len(rCols), len(sCols))
	}
	for k := range rCols {
		if rCols[k] < 0 || rCols[k] >= r.Arity() {
			return nil, fmt.Errorf("relation: semijoin position %d out of range", rCols[k])
		}
	}
	if len(rCols) == 0 {
		return r, nil // some part is nonempty
	}
	matched := make([]bool, r.Size())
	var probe []int32
	for _, p := range live {
		for _, c := range sCols {
			if c < 0 || c >= p.Arity() {
				return nil, fmt.Errorf("relation: semijoin position %d out of range", c)
			}
		}
		probe = p.Index(sCols...).MatchingRows(r, rCols, probe[:0])
		for _, i := range probe {
			matched[i] = true
		}
	}
	rows := make([]int32, 0, len(matched))
	for i, ok := range matched {
		if ok {
			rows = append(rows, int32(i))
		}
	}
	return r.Gather(r.Name+"_sj", rows), nil
}
