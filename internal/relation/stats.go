package relation

import (
	"math"
	"strconv"
)

// Cardinality and selectivity estimation for the query planner. V(R,c) —
// the number of distinct values in column c — is the primitive the greedy
// join-ordering heuristic (internal/plan.OrderAtoms) consumes: it scores a
// candidate atom by |R| / Π_v V(R, v) over its already-bound variables.
// Selectivity and EstimateJoinSize expose the same statistics as the
// textbook System-R style estimators for other planning callers. Distinct
// counts are memoized per relation in the same size-keyed memo table as the
// hash indexes — recomputed when the relation grows, shared with renames and
// clones, safe under concurrent readers.

// stats caches per-column distinct value counts. For frozen (epoch-
// published) relations the per-column value sets themselves are retained,
// so a successor version produced by Extend can derive its statistics from
// the delta alone instead of rescanning every column (extendStats in
// delta.go); transient operator outputs keep only the counts.
type stats struct {
	distinct []int                // distinct values per column
	sets     []map[Value]struct{} // per-column value sets; frozen relations only
}

// ensureStats computes (or fetches) per-column distinct counts. Columns are
// contiguous []Value arrays, so each count is a single scan with a uint32
// set.
func (r *Relation) ensureStats() *stats {
	return r.Memo("stats", func() any {
		s := &stats{distinct: make([]int, len(r.Attrs))}
		if r.frozen {
			s.sets = make([]map[Value]struct{}, len(r.Attrs))
			for c := range r.Attrs {
				set := make(map[Value]struct{}, r.n)
				for _, v := range r.Column(c) {
					set[v] = struct{}{}
				}
				s.sets[c] = set
				s.distinct[c] = len(set)
			}
			return s
		}
		seen := make(map[Value]struct{}, r.n)
		for c := range r.Attrs {
			clear(seen)
			for _, v := range r.Column(c) {
				seen[v] = struct{}{}
			}
			s.distinct[c] = len(seen)
		}
		return s
	}).(*stats)
}

// DistinctCount returns V(R,c): the number of distinct values in column c
// (0-based). Out-of-range columns report 0.
func (r *Relation) DistinctCount(c int) int {
	if c < 0 || c >= len(r.Attrs) {
		return 0
	}
	return r.ensureStats().distinct[c]
}

// statsSampleCap bounds the rows DistinctEstimate scans when the exact
// statistics are not already memoized: above it the count comes from a
// strided sample instead of a full column scan.
const statsSampleCap = 2048

// DistinctEstimate returns an estimate of V(R,c) cheap enough to compute
// on transient operator outputs: the exact memoized count when the stats
// memo is already built (base and frozen relations after their first
// planning pass), an exact scan for small relations, and a strided GEE
// sample estimate for large unmemoized intermediates — the tracing
// layer's per-operator size estimators run on every traced evaluation,
// and an exact rescan of each fresh intermediate would make tracing
// O(rows) per operator. Out-of-range columns report 0.
func (r *Relation) DistinctEstimate(c int) int {
	if c < 0 || c >= len(r.Attrs) {
		return 0
	}
	if s, ok := r.peekMemo("stats"); ok {
		return s.(*stats).distinct[c]
	}
	if r.Size() <= statsSampleCap {
		return r.ensureStats().distinct[c]
	}
	key := "statsest:" + strconv.Itoa(c)
	return r.Memo(key, func() any {
		return sampleDistinct(r.Column(c))
	}).(int)
}

// sampleDistinct estimates the distinct count of a column from a strided
// sample of ~statsSampleCap values with the GEE estimator
// d̂ = √(n/s)·f1 + (d_s − f1): values seen once in the sample are scaled
// up by the square root of the sampling fraction (they may well recur in
// the unseen rows), values seen twice or more are counted once. The
// result is clamped to [d_s, n].
func sampleDistinct(col []Value) int {
	n := len(col)
	step := n / statsSampleCap
	seen := make(map[Value]int, statsSampleCap)
	s := 0
	for i := 0; i < n; i += step {
		seen[col[i]]++
		s++
	}
	ds, f1 := len(seen), 0
	for _, k := range seen {
		if k == 1 {
			f1++
		}
	}
	est := int(math.Sqrt(float64(n)/float64(s))*float64(f1)) + ds - f1
	return min(max(est, ds), n)
}

// DistinctCountAttr is DistinctCount addressed by attribute name; unknown
// attributes report 0.
func (r *Relation) DistinctCountAttr(name string) int {
	return r.DistinctCount(r.AttrIndex(name))
}

// Selectivity returns V(R,c)/|R| for column c: 1 means the column is a key,
// values near 0 mean heavy duplication. Empty relations report 0.
func (r *Relation) Selectivity(c int) float64 {
	if r.Size() == 0 {
		return 0
	}
	return float64(r.DistinctCount(c)) / float64(r.Size())
}

// EstimateJoinSize estimates |r ⋈ s| (natural join on shared attribute
// names) as |r|·|s| / Π_a max(V(r,a), V(s,a)). With no shared attributes the
// estimate is the product size. The estimate is never negative and is exact
// for cross products.
func EstimateJoinSize(r, s *Relation) float64 {
	est := float64(r.Size()) * float64(s.Size())
	for j, a := range s.Attrs {
		i := r.AttrIndex(a)
		if i < 0 {
			continue
		}
		vr, vs := r.DistinctCount(i), s.DistinctCount(j)
		if v := max(vr, vs); v > 0 {
			est /= float64(v)
		}
	}
	return est
}
