// Package lru is a fixed-capacity string-keyed least-recently-used cache
// with hit/miss accounting — the eviction policy behind the Engine's
// per-query analysis and plan caches. It is intentionally minimal: no
// TTLs, no weights, no locking (callers hold their own mutex; the Engine
// already serializes cache access), just the recency list that replaces the
// seed's evict-an-arbitrary-entry behavior.
package lru

import "container/list"

// Cache maps string keys to values, evicting the least recently used entry
// once capacity is exceeded. Get and Put both count as uses. Not safe for
// concurrent use.
type Cache[V any] struct {
	capacity     int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type entry[V any] struct {
	key string
	v   V
}

// New returns an empty cache holding at most capacity entries. capacity
// must be positive.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the value under key, marking it most recently used and
// counting a hit or miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).v, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value under key without touching recency or the
// hit/miss counters.
func (c *Cache[V]) Peek(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[V]).v, true
	}
	var zero V
	return zero, false
}

// Put stores the value under key, marking it most recently used. At
// capacity, the least recently used entry is evicted.
func (c *Cache[V]) Put(key string, v V) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).v = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, v: v})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
	}
}

// Remove deletes the entry under key, reporting whether it was present.
// Removal touches neither recency of other entries nor the hit/miss
// counters — it is the explicit-invalidation hook (the spill governor
// unregisters discarded buffers through it).
func (c *Cache[V]) Remove(key string) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int { return c.ll.Len() }

// Keys returns the cached keys, most recently used first.
func (c *Cache[V]) Keys() []string {
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}

// Backward walks entries least recently used first, stopping when f
// returns false. It touches neither recency nor the hit/miss counters —
// the eviction-scan hook: the spill governor collects cold candidates
// from the back without materializing every key. f must not mutate the
// cache.
func (c *Cache[V]) Backward(f func(key string, v V) bool) {
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry[V])
		if !f(e.key, e.v) {
			return
		}
	}
}

// Stats returns how many Gets hit and missed since creation (or the last
// ResetStats).
func (c *Cache[V]) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the hit/miss counters without touching the cached
// entries or their recency, so callers can attribute counts to a window
// (e.g. one benchmark query) instead of the cache's whole lifetime.
func (c *Cache[V]) ResetStats() { c.hits, c.misses = 0, 0 }
