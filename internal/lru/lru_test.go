package lru

import "testing"

func TestPutGet(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) after update = %d, want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch a, making b the least recently used.
	c.Get("a")
	c.Put("d", 4)
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should have been evicted (least recently used)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Peek(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestPutRefreshesRecency(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 3) // re-Put promotes a; b becomes LRU
	c.Put("c", 4)
	if _, ok := c.Peek("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("a should have survived (refreshed by Put)")
	}
}

func TestPeekDoesNotPromoteOrCount(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Peek("a") // no promotion: a stays LRU
	c.Put("c", 3)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("a should have been evicted despite the Peek")
	}
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("Stats after Peeks = %d hits, %d misses; want 0, 0", h, m)
	}
}

func TestStats(t *testing.T) {
	c := New[string](2)
	c.Put("a", "x")
	c.Get("a")
	c.Get("a")
	c.Get("nope")
	if h, m := c.Stats(); h != 2 || m != 1 {
		t.Fatalf("Stats = %d hits, %d misses; want 2, 1", h, m)
	}
}

func TestKeysMostRecentFirst(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a")
	keys := c.Keys()
	want := []string{"a", "c", "b"}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}

func TestRemove(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	if !c.Remove("a") {
		t.Fatal("Remove(a) reported absent")
	}
	if c.Remove("a") {
		t.Fatal("second Remove(a) reported present")
	}
	if _, ok := c.Peek("a"); ok {
		t.Fatal("a survives Remove")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Removal must not count as a hit or miss.
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("Stats after Remove = %d/%d, want 0/0", h, m)
	}
	// The freed slot is usable again without evicting b.
	c.Put("c", 3)
	c.Put("d", 4)
	if _, ok := c.Peek("b"); !ok {
		t.Fatal("b evicted although Remove freed a slot")
	}
}

func TestResetStats(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Get("a")
	c.Get("missing")
	c.ResetStats()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatalf("Stats after reset = %d/%d", h, m)
	}
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("ResetStats dropped entries")
	}
	c.Get("a")
	if h, _ := c.Stats(); h != 1 {
		t.Fatalf("hits after reset = %d, want 1", h)
	}
}
