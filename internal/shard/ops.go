package shard

// Partition-parallel operators. Each routing operator (NaturalJoin,
// Semijoin, ProjectIdx) decides per call whether sharding applies — the
// inputs clear Options.MinRows, P > 1, and a partition key aligned with the
// join (or projection) columns exists — and otherwise falls back to the
// single-shard relation-package operator, so callers thread one code path
// regardless of configuration. The co-partitioned core (HashJoin,
// SemijoinShards, Select) fans out over internal/pool and honors context
// cancellation between and during shards.

import (
	"context"
	"fmt"

	"cqbound/internal/pool"
	"cqbound/internal/relation"
)

// Select is the sharded scan: pred runs over every shard in parallel and
// the surviving rows are concatenated (shards are disjoint, so the result
// needs no dedup pass). The tuple passed to pred is a reused per-shard
// buffer, valid only during the call.
func (s *Sharded) Select(ctx context.Context, pred func(relation.Tuple) bool) (*relation.Relation, error) {
	parts := make([]*relation.Relation, s.P())
	if err := pool.Run(ctx, 0, s.P(), func(k int) error {
		parts[k] = s.shards[k].Select(pred)
		return nil
	}); err != nil {
		return nil, err
	}
	return relation.Concat(s.base.Name+"_sel", s.base.Attrs, parts...)
}

// HashJoin joins two co-partitioned views on the given position pairs
// (base-relation positions; one pair must be the partition keys and both
// views must have the same P). Shard k of r joins only shard k of s — a
// matching row pair agrees on the key columns, so both rows hash to the
// same shard — and the per-shard outputs concatenate without dedup because
// every output row carries its key value. Keeps all columns of both sides,
// exactly like relation.HashJoin.
func HashJoin(ctx context.Context, r, s *Sharded, pairs [][2]int) (*relation.Relation, error) {
	if r.P() != s.P() {
		return nil, fmt.Errorf("shard: joining %d-shard and %d-shard views", r.P(), s.P())
	}
	keyed := false
	for _, pr := range pairs {
		if pr[0] == r.key && pr[1] == s.key {
			keyed = true
			break
		}
	}
	if !keyed {
		return nil, fmt.Errorf("shard: partition keys (%d,%d) are not a join pair", r.key, s.key)
	}
	parts := make([]*relation.Relation, r.P())
	if err := pool.Run(ctx, 0, r.P(), func(k int) error {
		out, err := relation.HashJoin(r.shards[k], s.shards[k], pairs)
		if err == nil {
			parts[k] = out
		}
		return err
	}); err != nil {
		return nil, err
	}
	return relation.Concat(r.base.Name+"_j_"+s.base.Name, parts[0].Attrs, parts...)
}

// SemijoinShards computes r ⋉ s over co-partitioned views on explicit
// column pairs (rCols[i] joins sCols[i]; the partition keys must be one of
// the pairs). Each shard semijoins independently — a row of r matches only
// rows of s in its own shard — through the batched index probe of
// relation.SemijoinOn.
func SemijoinShards(ctx context.Context, r, s *Sharded, rCols, sCols []int) (*relation.Relation, error) {
	if r.P() != s.P() {
		return nil, fmt.Errorf("shard: semijoining %d-shard and %d-shard views", r.P(), s.P())
	}
	keyed := false
	for i := range rCols {
		if rCols[i] == r.key && sCols[i] == s.key {
			keyed = true
			break
		}
	}
	if !keyed {
		return nil, fmt.Errorf("shard: partition keys (%d,%d) are not a semijoin pair", r.key, s.key)
	}
	parts := make([]*relation.Relation, r.P())
	if err := pool.Run(ctx, 0, r.P(), func(k int) error {
		out, err := relation.SemijoinOn(r.shards[k], s.shards[k], rCols, sCols)
		if err == nil {
			parts[k] = out
		}
		return err
	}); err != nil {
		return nil, err
	}
	return relation.Concat(r.base.Name+"_sj", r.base.Attrs, parts...)
}

// bestKey picks which shared column pair to partition on: the one whose
// sides have the most distinct values (maximizing the smaller side's
// count), so hash partitions stay balanced. This is the greedy,
// statistics-light choice — V(R,c) is already memoized for the planner.
func bestKey(r, s *relation.Relation, rCols, sCols []int) int {
	best, bestScore := 0, -1
	for i := range rCols {
		score := r.DistinctCount(rCols[i])
		if d := s.DistinctCount(sCols[i]); d < score {
			score = d
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// NaturalJoin is the sharded natural join: r and s are co-partitioned on
// the shared attribute with the most distinct values and joined shard by
// shard, with s's copies of the join columns dropped as a dedup-free view.
// It falls back to relation.NaturalJoin when sharding is disabled, the
// inputs are below Options.MinRows, or there is no shared attribute to
// partition on (the join key isn't a partition key).
func NaturalJoin(ctx context.Context, opts *Options, r, s *relation.Relation) (*relation.Relation, error) {
	rCols, sCols := relation.SharedCols(r, s)
	if len(rCols) == 0 || !opts.active(max(r.Size(), s.Size())) {
		return relation.NaturalJoin(r, s)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := bestKey(r, s, rCols, sCols)
	p := opts.Count()
	pairs := make([][2]int, len(rCols))
	for i := range rCols {
		pairs[i] = [2]int{rCols[i], sCols[i]}
	}
	joined, err := HashJoin(ctx, Partition(r, rCols[k], p), Partition(s, sCols[k], p), pairs)
	if err != nil {
		return nil, err
	}
	return relation.NaturalJoinView(joined, r, s, sCols)
}

// Semijoin is the sharded r ⋉ s on shared attribute names, co-partitioned
// on the highest-cardinality shared column. It falls back to
// relation.Semijoin when sharding is disabled, the inputs are below
// Options.MinRows, or the sides share no attribute.
func Semijoin(ctx context.Context, opts *Options, r, s *relation.Relation) (*relation.Relation, error) {
	rCols, sCols := relation.SharedCols(r, s)
	if len(rCols) == 0 || !opts.active(max(r.Size(), s.Size())) {
		return relation.Semijoin(r, s)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := bestKey(r, s, rCols, sCols)
	p := opts.Count()
	return SemijoinShards(ctx, Partition(r, rCols[k], p), Partition(s, sCols[k], p), rCols, sCols)
}

// ProjectIdx is the sharded duplicate-eliminating projection of r onto the
// given positions (repeats allowed, as in relation.ProjectIdx): rows are
// partitioned on the kept column with the most distinct values, so all
// duplicates of a projected tuple land in one shard and the per-shard dedup
// maps — P cache-sized maps instead of one output-sized map — are globally
// correct. Falls back to relation.ProjectIdx below Options.MinRows.
func ProjectIdx(ctx context.Context, opts *Options, r *relation.Relation, idx []int) (*relation.Relation, error) {
	if len(idx) == 0 || !opts.active(r.Size()) {
		return r.ProjectIdx(idx...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, bestScore := idx[0], -1
	for _, c := range idx {
		if c < 0 || c >= r.Arity() {
			return r.ProjectIdx(idx...) // surface the range error unsharded
		}
		if d := r.DistinctCount(c); d > bestScore {
			key, bestScore = c, d
		}
	}
	sh := Partition(r, key, opts.Count())
	parts := make([]*relation.Relation, sh.P())
	if err := pool.Run(ctx, 0, sh.P(), func(k int) error {
		out, err := sh.shards[k].ProjectIdx(idx...)
		if err == nil {
			parts[k] = out
		}
		return err
	}); err != nil {
		return nil, err
	}
	return relation.Concat(r.Name+"_proj", parts[0].Attrs, parts...)
}
