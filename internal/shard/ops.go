package shard

// Partition-parallel operators over already-aligned views, plus the flat
// relation-in/relation-out wrappers around the exchange-routed stream
// operators of exchange.go. Callers that thread partitioning through a
// plan use the Stream forms; callers with two flat relations use these and
// pay at most one materialization at the end.

import (
	"context"
	"fmt"

	"cqbound/internal/pool"
	"cqbound/internal/relation"
)

// Select is the sharded scan: pred runs over every shard in parallel and
// the surviving rows are concatenated (shards are disjoint, so the result
// needs no dedup pass). The tuple passed to pred is a reused per-shard
// buffer, valid only during the call.
func (s *Sharded) Select(ctx context.Context, pred func(relation.Tuple) bool) (*relation.Relation, error) {
	parts := make([]*relation.Relation, s.P())
	if err := pool.Run(ctx, 0, s.P(), func(k int) error {
		parts[k] = s.sh[k].Select(pred)
		return nil
	}); err != nil {
		return nil, err
	}
	return relation.Concat(s.name+"_sel", s.attrs, parts...)
}

// HashJoin joins two co-partitioned views on the given position pairs
// (base-relation positions; one pair must be the partition keys and both
// views must have the same P). Shard k of r joins only shard k of s — a
// matching row pair agrees on the key columns, so both rows hash to the
// same shard — and the per-shard outputs concatenate without dedup because
// every output row carries its key value. Keeps all columns of both sides,
// exactly like relation.HashJoin.
func HashJoin(ctx context.Context, r, s *Sharded, pairs [][2]int) (*relation.Relation, error) {
	if r.P() != s.P() {
		return nil, fmt.Errorf("shard: joining %d-shard and %d-shard views", r.P(), s.P())
	}
	keyed := false
	for _, pr := range pairs {
		if pr[0] == r.key && pr[1] == s.key {
			keyed = true
			break
		}
	}
	if !keyed {
		return nil, fmt.Errorf("shard: partition keys (%d,%d) are not a join pair", r.key, s.key)
	}
	parts := make([]*relation.Relation, r.P())
	if err := pool.Run(ctx, 0, r.P(), func(k int) error {
		out, err := relation.HashJoin(r.sh[k], s.sh[k], pairs)
		if err == nil {
			parts[k] = out
		}
		return err
	}); err != nil {
		return nil, err
	}
	return relation.Concat(r.name+"_j_"+s.name, parts[0].Attrs, parts...)
}

// SemijoinShards computes r ⋉ s over co-partitioned views on explicit
// column pairs (rCols[i] joins sCols[i]; the partition keys must be one of
// the pairs). Each shard semijoins independently — a row of r matches only
// rows of s in its own shard — through the batched index probe of
// relation.SemijoinOn.
func SemijoinShards(ctx context.Context, r, s *Sharded, rCols, sCols []int) (*relation.Relation, error) {
	if r.P() != s.P() {
		return nil, fmt.Errorf("shard: semijoining %d-shard and %d-shard views", r.P(), s.P())
	}
	keyed := false
	for i := range rCols {
		if rCols[i] == r.key && sCols[i] == s.key {
			keyed = true
			break
		}
	}
	if !keyed {
		return nil, fmt.Errorf("shard: partition keys (%d,%d) are not a semijoin pair", r.key, s.key)
	}
	parts := make([]*relation.Relation, r.P())
	if err := pool.Run(ctx, 0, r.P(), func(k int) error {
		out, err := relation.SemijoinOn(r.sh[k], s.sh[k], rCols, sCols)
		if err == nil {
			parts[k] = out
		}
		return err
	}); err != nil {
		return nil, err
	}
	return relation.Concat(r.name+"_sj", r.attrs, parts...)
}

// NaturalJoin is the flat form of NaturalJoinStream: r and s join on their
// shared attributes through the exchange router (co-partitioning,
// broadcast, skew splitting, fallback all apply) and the result is
// materialized. Callers composing several operators should prefer the
// Stream form, which keeps intermediates partitioned.
func NaturalJoin(ctx context.Context, opts *Options, r, s *relation.Relation) (*relation.Relation, error) {
	st, err := NaturalJoinStream(ctx, opts, StreamOf(r), StreamOf(s))
	if err != nil {
		return nil, err
	}
	return st.Rel(), nil
}

// Semijoin is the flat form of SemijoinStream: r ⋉ s on shared attribute
// names through the exchange router, materialized.
func Semijoin(ctx context.Context, opts *Options, r, s *relation.Relation) (*relation.Relation, error) {
	st, err := SemijoinStream(ctx, opts, StreamOf(r), StreamOf(s))
	if err != nil {
		return nil, err
	}
	return st.Rel(), nil
}

// ProjectIdx is the flat form of ProjectStream: the duplicate-eliminating
// projection of r onto the given positions through the exchange router,
// materialized.
func ProjectIdx(ctx context.Context, opts *Options, r *relation.Relation, idx []int) (*relation.Relation, error) {
	st, err := ProjectStream(ctx, opts, StreamOf(r), idx)
	if err != nil {
		return nil, err
	}
	return st.Rel(), nil
}
