package shard

// Tests for the exchange router: partition reuse, shard-to-shard
// repartitioning, broadcast routing, hot-shard splitting, and the parallel
// partition build. Each compares against the single-shard relation
// operators, which are the semantics of record.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"cqbound/internal/relation"
	"cqbound/internal/spill"
)

// zipfRel builds a relation whose first column is Zipf-skewed: value "hot"
// appears in about `hotFrac` of the rows, the rest are uniform.
func zipfRel(rng *rand.Rand, name string, attrs []string, n int, hotFrac float64, universe int) *relation.Relation {
	r := relation.New(name, attrs...)
	for i := 0; i < n; i++ {
		vals := make([]string, len(attrs))
		if rng.Float64() < hotFrac {
			vals[0] = "hot"
		} else {
			vals[0] = fmt.Sprintf("u%d", rng.Intn(universe))
		}
		for j := 1; j < len(vals); j++ {
			vals[j] = fmt.Sprintf("v%d", i*len(attrs)+j) // unique: no dedup
		}
		r.Add(vals...)
	}
	return r
}

func TestExchangeReusesAlignedPartition(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(20)), "R", []string{"a", "b"}, 300, 30)
	sh := Partition(r, 0, 4)
	m := &Metrics{}
	got, err := Exchange(context.Background(), ShardedStream(sh), 0, 4, &Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got != sh {
		t.Fatal("aligned exchange rebuilt the partition instead of reusing it")
	}
	s := m.Snapshot()
	if s.ReusedRows != int64(r.Size()) || s.ExchangedRows != 0 {
		t.Fatalf("reused=%d exchanged=%d, want %d/0", s.ReusedRows, s.ExchangedRows, r.Size())
	}
}

func TestExchangeRepartitionsFromParts(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(21)), "R", []string{"a", "b"}, 500, 25)
	onA := Partition(r, 0, 4)
	// Re-wrap as an assembled view (no flat base) and exchange onto column b.
	parts := make([]*relation.Relation, onA.P())
	for k := range parts {
		parts[k] = onA.Shard(k)
	}
	view := FromParts("V", r.Attrs, 0, parts)
	m := &Metrics{}
	got, err := Exchange(context.Background(), ShardedStream(view), 1, 4, &Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != 1 || got.P() != 4 {
		t.Fatalf("exchanged view key=%d P=%d, want 1/4", got.Key(), got.P())
	}
	union := relation.New("U", "a", "b")
	total := 0
	for k := 0; k < got.P(); k++ {
		s := got.Shard(k)
		total += s.Size()
		for i := 0; i < s.Size(); i++ {
			if ShardOf(s.At(i, 1), got.P()) != k {
				t.Fatalf("row in shard %d violates the new key's hash", k)
			}
			if _, err := union.Insert(s.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if total != r.Size() || !relation.Equal(union, r) {
		t.Fatalf("repartition lost or duplicated rows: %d of %d", total, r.Size())
	}
	if m.Snapshot().ExchangedRows != int64(r.Size()) {
		t.Fatalf("exchanged rows = %d, want %d", m.Snapshot().ExchangedRows, r.Size())
	}
	// The materialized flat form agrees too.
	if !relation.Equal(got.Rel(), r) {
		t.Fatal("materialized exchanged view differs from the base rows")
	}
}

func TestNaturalJoinStreamStaysSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	r := randomRel(rng, "R", []string{"a", "b"}, 400, 20)
	s := randomRel(rng, "S", []string{"b", "c"}, 350, 20)
	u := randomRel(rng, "U", []string{"c", "d"}, 300, 20)
	want1, err := relation.NaturalJoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.NaturalJoin(want1, u)
	if err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, Metrics: m}
	ctx := context.Background()
	st1, err := NaturalJoinStream(ctx, opts, StreamOf(r), StreamOf(s))
	if err != nil {
		t.Fatal(err)
	}
	if st1.Sharded() == nil {
		t.Fatal("first join did not come back sharded")
	}
	st2, err := NaturalJoinStream(ctx, opts, st1, StreamOf(u))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Sharded() == nil {
		t.Fatal("second join collapsed to a flat relation")
	}
	if !relation.Equal(want, st2.Rel()) {
		t.Fatalf("chained sharded joins = %d rows, single-shard = %d", st2.Rel().Size(), want.Size())
	}
	if got := m.Snapshot().FallbackOps; got != 0 {
		t.Fatalf("chained joins fell back %d times with threshold 0", got)
	}
	// The second join's key (c) is not the first join's partition key (b),
	// so rows must have moved through the exchange (repartition or
	// broadcast); either way no join ran single-shard.
	if snap := m.Snapshot(); snap.ExchangedRows == 0 && snap.BroadcastOps == 0 {
		t.Fatalf("misaligned second join neither exchanged nor broadcast: %+v", snap)
	}
}

func TestNaturalJoinStreamReusesAlignedKey(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := randomRel(rng, "R", []string{"a", "b"}, 400, 20)
	s := randomRel(rng, "S", []string{"b", "c"}, 350, 20)
	u := randomRel(rng, "U", []string{"b", "d"}, 300, 20)
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, Metrics: m}
	ctx := context.Background()
	st1, err := NaturalJoinStream(ctx, opts, StreamOf(r), StreamOf(s))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot().ReusedRows
	st2, err := NaturalJoinStream(ctx, opts, st1, StreamOf(u))
	if err != nil {
		t.Fatal(err)
	}
	// Both joins are on b; the intermediate arrives partitioned on b and
	// must be reused, not repartitioned.
	if got := m.Snapshot().ReusedRows - before; got < int64(st1.Size()) {
		t.Fatalf("aligned second join reused %d rows, want at least %d", got, st1.Size())
	}
	want1, _ := relation.NaturalJoin(r, s)
	want, _ := relation.NaturalJoin(want1, u)
	if !relation.Equal(want, st2.Rel()) {
		t.Fatal("aligned reuse changed the join result")
	}
}

func TestBroadcastJoinRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// Big side partitioned on a (not a join column of the next join); small
	// side joins on b and is well under one shard's size.
	big := randomRel(rng, "R", []string{"a", "b"}, 2000, 40)
	small := randomRel(rng, "S", []string{"b", "c"}, 30, 40)
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, Metrics: m}
	ctx := context.Background()
	bigSt := ShardedStream(Partition(big, 0, 4))
	got, err := NaturalJoinStream(ctx, opts, bigSt, StreamOf(small))
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().BroadcastOps == 0 {
		t.Fatal("small misaligned side was repartitioned instead of broadcast")
	}
	want, _ := relation.NaturalJoin(big, small)
	if !relation.Equal(want, got.Rel()) {
		t.Fatalf("broadcast join = %d rows, single-shard = %d", got.Rel().Size(), want.Size())
	}
	// The output must stay partitioned on the big side's key (column a).
	sh := got.Sharded()
	if sh == nil {
		t.Fatal("broadcast join lost the big side's partitioning")
	}
	for k := 0; k < sh.P(); k++ {
		s := sh.Shard(k)
		for i := 0; i < s.Size(); i++ {
			if ShardOf(s.At(i, sh.Key()), sh.P()) != k {
				t.Fatalf("broadcast output shard %d violates its declared key", k)
			}
		}
	}
}

func TestSkewSplitJoinMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := zipfRel(rng, "L", []string{"k", "x"}, 600, 0.5, 10)
	r := zipfRel(rng, "R", []string{"k", "y"}, 200, 0.3, 10)
	want, err := relation.NaturalJoin(l, r)
	if err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, SkewFraction: 0.2, Metrics: m}
	got, err := NaturalJoinStream(context.Background(), opts, StreamOf(l), StreamOf(r))
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got.Rel()) {
		t.Fatalf("skew-split join = %d rows, single-shard = %d", got.Rel().Size(), want.Size())
	}
	if m.Snapshot().SkewSplits == 0 {
		t.Fatal("half the rows share one key but no shard was split")
	}
}

func TestSkewSplitSemijoinMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	l := zipfRel(rng, "L", []string{"k", "x"}, 600, 0.5, 10)
	r := zipfRel(rng, "R", []string{"k", "y"}, 150, 0.2, 10)
	want, err := relation.Semijoin(l, r)
	if err != nil {
		t.Fatal(err)
	}
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, SkewFraction: 0.2, Metrics: m}
	got, err := SemijoinStream(context.Background(), opts, StreamOf(l), StreamOf(r))
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got.Rel()) {
		t.Fatalf("skew-split semijoin = %d rows, single-shard = %d", got.Rel().Size(), want.Size())
	}
	if m.Snapshot().SkewSplits == 0 {
		t.Fatal("hot semijoin shard was not split")
	}
	// Splitting must preserve the left side's partitioning contract.
	sh := got.Sharded()
	for k := 0; k < sh.P(); k++ {
		s := sh.Shard(k)
		for i := 0; i < s.Size(); i++ {
			if ShardOf(s.At(i, sh.Key()), sh.P()) != k {
				t.Fatalf("semijoin output shard %d violates its key after splitting", k)
			}
		}
	}
}

func TestSkewDisabledByNegativeFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	l := zipfRel(rng, "L", []string{"k", "x"}, 400, 0.6, 5)
	r := zipfRel(rng, "R", []string{"k", "y"}, 100, 0.4, 5)
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, SkewFraction: -1, Metrics: m}
	got, err := NaturalJoinStream(context.Background(), opts, StreamOf(l), StreamOf(r))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := relation.NaturalJoin(l, r)
	if !relation.Equal(want, got.Rel()) {
		t.Fatal("skew-disabled join diverged")
	}
	if m.Snapshot().SkewSplits != 0 {
		t.Fatal("negative SkewFraction still split shards")
	}
}

func TestSemijoinStreamBroadcastKeepsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	l := randomRel(rng, "L", []string{"a", "b"}, 500, 25)
	r := randomRel(rng, "R", []string{"b", "c"}, 200, 25)
	// l partitioned on a — NOT the semijoin column b.
	lSt := ShardedStream(Partition(l, 0, 4))
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, Metrics: m}
	got, err := SemijoinStream(context.Background(), opts, lSt, StreamOf(r))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := relation.Semijoin(l, r)
	if !relation.Equal(want, got.Rel()) {
		t.Fatal("broadcast semijoin diverged from relation.Semijoin")
	}
	sh := got.Sharded()
	if sh == nil || sh.Key() != 0 {
		t.Fatal("semijoin did not keep the left side's misaligned partitioning")
	}
	if m.Snapshot().BroadcastOps == 0 {
		t.Fatal("misaligned semijoin repartitioned instead of broadcasting")
	}
}

func TestProjectStreamKeepsAlignedPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r := randomRel(rng, "R", []string{"a", "b", "c"}, 500, 8)
	m := &Metrics{}
	opts := &Options{MinRows: 0, Shards: 4, Metrics: m}
	st := ShardedStream(Partition(r, 1, 4))
	got, err := ProjectStream(context.Background(), opts, st, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := r.ProjectIdx(1, 2)
	if !relation.Equal(want, got.Rel()) {
		t.Fatal("aligned sharded projection diverged")
	}
	sh := got.Sharded()
	if sh == nil || sh.Key() != 0 {
		t.Fatalf("projection lost or misplaced the partition key (key=%v)", sh)
	}
	if m.Snapshot().ExchangedRows != 0 {
		t.Fatal("projection repartitioned although its key was kept")
	}
}

func TestParallelPartitionMatchesSequential(t *testing.T) {
	// Force a multi-worker pool so the block-parallel build path runs even
	// on single-core machines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	n := parallelPartitionMinRows + 1234
	col := make([]relation.Value, n)
	rng := rand.New(rand.NewSource(30))
	for i := range col {
		col[i] = relation.Value(rng.Intn(5000))
	}
	for _, p := range []int{2, 7, 16} {
		got := partitionRows(col, p)
		// Sequential reference.
		want := make([][]int32, p)
		for i, v := range col {
			k := ShardOf(v, p)
			want[k] = append(want[k], int32(i))
		}
		for k := 0; k < p; k++ {
			if len(got[k]) != len(want[k]) {
				t.Fatalf("p=%d shard %d: %d rows, want %d", p, k, len(got[k]), len(want[k]))
			}
			for i := range got[k] {
				if got[k][i] != want[k][i] {
					t.Fatalf("p=%d shard %d row %d: parallel build reordered rows", p, k, i)
				}
			}
		}
	}
}

// TestExchangeEmptyStreamFastPath pins the empty-shard satellite: an empty
// stream exchanges without a bucket pass or per-shard column allocation —
// every shard of the result is the same canonical empty relation — and no
// rows count as exchanged.
func TestExchangeEmptyStreamFastPath(t *testing.T) {
	m := &Metrics{}
	empty := relation.New("E", "a", "b")
	got, err := Exchange(context.Background(), StreamOf(empty), 1, 8, &Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got.P() != 8 || got.Key() != 1 || got.Size() != 0 {
		t.Fatalf("empty exchange: P=%d key=%d size=%d", got.P(), got.Key(), got.Size())
	}
	for k := 1; k < got.P(); k++ {
		if got.Shard(k) != got.Shard(0) {
			t.Fatal("empty shards should share one canonical relation")
		}
	}
	if s := m.Snapshot(); s.ExchangedRows != 0 || s.ReusedRows != 0 {
		t.Fatalf("empty exchange counted rows: %+v", s)
	}
	// Same for an assembled empty view exchanged onto a new key.
	view := FromParts("V", []string{"a", "b"}, 0, []*relation.Relation{empty, empty})
	got, err = Exchange(context.Background(), ShardedStream(view), 1, 4, &Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if got.P() != 4 || got.Size() != 0 {
		t.Fatalf("assembled empty exchange: P=%d size=%d", got.P(), got.Size())
	}
	if s := m.Snapshot(); s.ExchangedRows != 0 {
		t.Fatalf("assembled empty exchange moved rows: %+v", s)
	}
}

// TestSparsePartitioningSkipsEmptyShards drives a join whose key has one
// distinct value at P=16 — fifteen shards empty on both sides — and checks
// correctness plus the canonical-empty sharing of the output parts.
func TestSparsePartitioningSkipsEmptyShards(t *testing.T) {
	r := relation.New("R", "a", "b")
	s := relation.New("S", "b", "c")
	for i := 0; i < 40; i++ {
		r.Add(fmt.Sprintf("x%d", i), "hub")
		s.Add("hub", fmt.Sprintf("z%d", i%4))
	}
	opts := &Options{MinRows: 0, Shards: 16, Metrics: &Metrics{}}
	out, err := NaturalJoinStream(context.Background(), opts, StreamOf(r), StreamOf(s))
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.NaturalJoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(out.Rel(), want) {
		t.Fatalf("sparse join: %d tuples, want %d", out.Size(), want.Size())
	}
	sh := out.Sharded()
	if sh == nil {
		t.Fatal("sparse join lost its partitioning")
	}
	var emptyShard *relation.Relation
	emptyCount := 0
	for k := 0; k < sh.P(); k++ {
		if sh.Shard(k).Size() == 0 {
			emptyCount++
			if emptyShard == nil {
				emptyShard = sh.Shard(k)
			} else if sh.Shard(k) != emptyShard {
				t.Fatal("empty output shards should share one canonical relation")
			}
		}
	}
	if emptyCount < 15 {
		t.Fatalf("expected >= 15 empty shards under a 1-value key, got %d", emptyCount)
	}
}

// TestStreamRepartitionMatchesExchangeParts pins the spill-aware streaming
// repartition against the in-memory path: same shards, same row order.
func TestStreamRepartitionMatchesExchangeParts(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(33)), "R", []string{"a", "b"}, 600, 40)
	onA := Partition(r, 0, 4)
	parts := make([]*relation.Relation, onA.P())
	for k := range parts {
		parts[k] = onA.Shard(k)
	}
	view := FromParts("V", r.Attrs, 0, parts)
	want, err := exchangeParts(view, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := spill.NewGovernor(1, t.TempDir()) // everything cold parks
	defer g.Close()
	got, err := streamRepartition(view, 1, 8, &Options{Spill: g})
	if err != nil {
		t.Fatal(err)
	}
	if got.P() != want.P() || got.Key() != want.Key() {
		t.Fatalf("shape mismatch: P %d/%d key %d/%d", got.P(), want.P(), got.Key(), want.Key())
	}
	for k := 0; k < want.P(); k++ {
		ws, gs := want.Shard(k), got.Shard(k)
		if ws.Size() != gs.Size() {
			t.Fatalf("shard %d: %d rows, want %d", k, gs.Size(), ws.Size())
		}
		for i := 0; i < ws.Size(); i++ {
			for c := 0; c < ws.Arity(); c++ {
				if ws.At(i, c) != gs.At(i, c) {
					t.Fatalf("shard %d row %d col %d differs: streaming repartition reordered rows", k, i, c)
				}
			}
		}
	}
	if g.Snapshot().Evictions == 0 {
		t.Fatal("1-byte governor never evicted the streamed output")
	}
}
