package shard

// Tracing hooks for the streamed operators. Pipelines are lazy — the work
// a JoinPipedStream sets up happens while the final sink drains — so their
// operator spans can't be timed by the constructor. Instead the executor
// attaches a span to the Piped it gets back (TracePiped): every part is
// wrapped in a counting tap, the span is armed with the part count, and it
// closes when the last part reports end-of-stream. Mid-stream exchanges
// likewise feed a span through the scatter's row callback.

import (
	"context"

	"cqbound/internal/batch"
	"cqbound/internal/trace"
)

// TracePiped attaches sp to pd: the span records the part fan-out, counts
// every batch and row the pipelines emit, and ends when all parts reach
// end-of-stream. Returns pd for chaining; with a nil span (tracing off)
// pd is returned untouched.
func TracePiped(pd *Piped, sp *trace.Span) *Piped {
	if sp == nil || pd == nil {
		return pd
	}
	sp.SetShards(len(pd.parts))
	sp.Arm(len(pd.parts))
	for k, part := range pd.parts {
		pd.parts[k] = &traceTap{src: part, sp: sp}
	}
	return pd
}

// traceTap counts one part's batches and rows into a span and reports its
// end-of-stream. Each part has a single consumer, so the done flag needs
// no lock; the span's counters are atomic across parts.
type traceTap struct {
	src  batch.Iterator
	sp   *trace.Span
	done bool
}

func (t *traceTap) Attrs() []string { return t.src.Attrs() }

func (t *traceTap) Next(ctx context.Context) (*batch.Batch, error) {
	b, err := t.src.Next(ctx)
	if b != nil {
		t.sp.AddBatch(b.N)
		return b, err
	}
	if !t.done {
		t.done = true
		t.sp.Done()
	}
	return b, err
}

// exchangeCount returns the row callback a mid-stream batch exchange
// feeds: always the shared ExchangedRows counter and, under tracing, an
// exchange span as well. The span has no natural close of its own — the
// scatter is as lazy as the pipeline around it — so Finish closes it with
// the evaluation.
func exchangeCount(opts *Options, col string, p int) func(int) {
	m := opts.metrics()
	tr := opts.Tracer()
	if tr == nil {
		return m.addExchanged
	}
	sp := tr.Op(trace.KindExchange, "exchange pipeline on "+col)
	sp.SetShards(p)
	sp.SetNote("mid-stream scatter")
	return func(n int) {
		m.addExchanged(n)
		sp.AddOut(n)
	}
}
