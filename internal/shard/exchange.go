package shard

// The shard-local exchange: routing that keeps multi-join plans partitioned
// end to end. A Stream couples a relation flowing through the executor with
// its current partitioning; Exchange aligns a stream to the key a join
// needs — reusing the partitioning it already has, repartitioning it
// shard-by-shard otherwise — and the stream operators (NaturalJoinStream,
// SemijoinStream, ProjectStream) decide per call between co-partitioned
// execution, broadcasting a small side against an already-partitioned big
// side, and single-shard fallback. Hot shards (one dominant key value) are
// split into row blocks joined against a pointer-replicated co-shard.

import (
	"context"
	"fmt"
	"sync/atomic"

	"cqbound/internal/pool"
	"cqbound/internal/relation"
	"cqbound/internal/trace"
)

// Metrics counts the routing decisions of exchange-routed execution. All
// counters are atomic: one Metrics may be shared across concurrent
// evaluations (the Engine does). The zero value is ready to use; methods on
// a nil *Metrics are no-ops, so operators count unconditionally.
type Metrics struct {
	// ShardedOps counts joins, semijoins and projections that ran
	// partition-parallel (including broadcasts).
	ShardedOps atomic.Int64
	// FallbackOps counts operator calls that fell back to single-shard
	// execution: inputs below Options.MinRows, no shared column to
	// partition on, or P < 2.
	FallbackOps atomic.Int64
	// ReusedRows totals the rows that arrived at an exchange already
	// partitioned on the needed key — the rows end-to-end sharding saved
	// from repartitioning.
	ReusedRows atomic.Int64
	// ExchangedRows totals the rows the exchange had to (re)partition onto
	// a new key. Flat base relations are memoized per (key, P), so
	// repeated evaluations may serve these rows from the memo; the counter
	// records the logical flow.
	ExchangedRows atomic.Int64
	// BroadcastOps counts joins and semijoins that kept the big side's
	// existing (misaligned) partitioning and probed the small side whole
	// in every shard instead of repartitioning.
	BroadcastOps atomic.Int64
	// SkewSplits counts hot shards split into row blocks by the skew
	// handler.
	SkewSplits atomic.Int64
}

// Stats is a point-in-time copy of Metrics, in declaration order.
type Stats struct {
	ShardedOps    int64
	FallbackOps   int64
	ReusedRows    int64
	ExchangedRows int64
	BroadcastOps  int64
	SkewSplits    int64
}

// Reset zeroes every counter (nil-safe) — the per-query snapshot hook
// behind Engine.ResetStats.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.ShardedOps.Store(0)
	m.FallbackOps.Store(0)
	m.ReusedRows.Store(0)
	m.ExchangedRows.Store(0)
	m.BroadcastOps.Store(0)
	m.SkewSplits.Store(0)
}

// AddTo merges this Metrics' counts into dst (both nil-safe). The Engine
// runs traced evaluations against a private Metrics so the per-query
// delta is exact, then folds it into the shared engine-wide counters.
func (m *Metrics) AddTo(dst *Metrics) {
	if m == nil || dst == nil {
		return
	}
	dst.ShardedOps.Add(m.ShardedOps.Load())
	dst.FallbackOps.Add(m.FallbackOps.Load())
	dst.ReusedRows.Add(m.ReusedRows.Load())
	dst.ExchangedRows.Add(m.ExchangedRows.Load())
	dst.BroadcastOps.Add(m.BroadcastOps.Load())
	dst.SkewSplits.Add(m.SkewSplits.Load())
}

// Snapshot copies the counters (nil-safe: a nil receiver reads all zeros).
func (m *Metrics) Snapshot() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		ShardedOps:    m.ShardedOps.Load(),
		FallbackOps:   m.FallbackOps.Load(),
		ReusedRows:    m.ReusedRows.Load(),
		ExchangedRows: m.ExchangedRows.Load(),
		BroadcastOps:  m.BroadcastOps.Load(),
		SkewSplits:    m.SkewSplits.Load(),
	}
}

func (m *Metrics) addSharded() {
	if m != nil {
		m.ShardedOps.Add(1)
	}
}

func (m *Metrics) addFallback() {
	if m != nil {
		m.FallbackOps.Add(1)
	}
}

func (m *Metrics) addReused(rows int) {
	if m != nil {
		m.ReusedRows.Add(int64(rows))
	}
}

func (m *Metrics) addExchanged(rows int) {
	if m != nil {
		m.ExchangedRows.Add(int64(rows))
	}
}

func (m *Metrics) addBroadcast() {
	if m != nil {
		m.BroadcastOps.Add(1)
	}
}

func (m *Metrics) addSkewSplit() {
	if m != nil {
		m.SkewSplits.Add(1)
	}
}

// Stream is the currency of exchange-routed evaluation: a relation flowing
// through the executor together with its current hash partitioning, when it
// has one. Operators that run partition-parallel return streams whose
// partitioning is known by construction (a co-partitioned join's shard-k
// output is shard k of the result), so the next operator can reuse it; the
// flat relation is materialized only when something actually needs it. A
// zero Stream is empty; build one with StreamOf or ShardedStream.
type Stream struct {
	rel *relation.Relation
	sh  *Sharded
}

// StreamOf wraps a flat relation with no current partitioning.
func StreamOf(r *relation.Relation) Stream { return Stream{rel: r} }

// ShardedStream wraps a partitioned view.
func ShardedStream(sh *Sharded) Stream { return Stream{sh: sh} }

// Rel returns the stream's flat relation, materializing it from the shards
// on first call when the stream only holds a partitioned view.
func (st Stream) Rel() *relation.Relation {
	if st.rel != nil {
		return st.rel
	}
	if st.sh != nil {
		return st.sh.Rel()
	}
	return nil
}

// Sharded returns the stream's current partitioned view, or nil.
func (st Stream) Sharded() *Sharded { return st.sh }

// Pin holds the stream's storage — every shard of a partitioned view, or
// the flat relation — resident until Unpin: the spill governor will not
// park it mid-operator. The stream operators pin below their exchange
// (the aligned views they fan out over), so a parked stream can still be
// repartitioned one shard at a time; callers composing their own scans
// over a stream's shards pin here. Pinning a parked stream reloads it
// whole — exactly what the budget exists to avoid — so hold pins only
// across immediate reads.
func (st Stream) Pin() {
	if st.sh != nil {
		st.sh.Pin()
		return
	}
	if st.rel != nil {
		st.rel.Pin()
	}
}

// Unpin releases a Pin.
func (st Stream) Unpin() {
	if st.sh != nil {
		st.sh.Unpin()
		return
	}
	if st.rel != nil {
		st.rel.Unpin()
	}
}

// Size returns the row count without materializing a flat relation.
func (st Stream) Size() int {
	if st.rel != nil {
		return st.rel.Size()
	}
	if st.sh != nil {
		return st.sh.Size()
	}
	return 0
}

// Attrs returns the stream's attribute names without materializing.
func (st Stream) Attrs() []string {
	if st.rel != nil {
		return st.rel.Attrs
	}
	if st.sh != nil {
		return st.sh.Attrs()
	}
	return nil
}

// distinct estimates the number of distinct values in column col. Flat
// relations answer from memoized statistics; partitioned views sum their
// shards' counts, which is exact on the partition key and an overestimate
// elsewhere — fine for the greedy key choice it feeds.
func (st Stream) distinct(col int) int {
	if st.rel != nil {
		return st.rel.DistinctCount(col)
	}
	n := 0
	for _, sh := range st.sh.sh {
		n += sh.DistinctCount(col)
	}
	return n
}

// Distinct is the exported exact form of distinct. Prefer
// DistinctEstimate in per-evaluation paths: exact counts on a fresh
// intermediate cost a full column scan.
func (st Stream) Distinct(col int) int {
	if st.rel == nil && st.sh == nil {
		return 0
	}
	return st.distinct(col)
}

// DistinctEstimate is Distinct's cheap form, feeding the executor's
// per-join size estimator (the System-R chain the trace layer renders
// next to actual row counts). Memoized counts are served exactly; large
// unmemoized intermediates are sampled (relation.DistinctEstimate)
// instead of scanned, keeping traced evaluation within a few percent of
// untraced.
func (st Stream) DistinctEstimate(col int) int {
	if st.rel != nil {
		return st.rel.DistinctEstimate(col)
	}
	if st.sh == nil {
		return 0
	}
	n := 0
	for _, sh := range st.sh.sh {
		n += sh.DistinctEstimate(col)
	}
	return n
}

// Exchange aligns st to partition key `key` at count p. A stream already
// partitioned on (key, p) is reused as is — the zero-cost case end-to-end
// sharding exists for. An empty stream short-circuits to a view whose
// shards all share one canonical empty relation: no bucket pass, no
// per-shard column allocation, and no rows counted as exchanged. A stream
// partitioned on a different key is repartitioned directly shard-to-shard
// (one bucket pass and a single-copy multi-gather, never materializing the
// flat relation); when the options carry a spill governor the repartition
// instead streams one source shard at a time — pin, bucket, scatter,
// unpin — so a view of parked shards never needs them all resident at
// once. A flat stream is partitioned through the per-(key, P) memo on its
// relation.
func Exchange(ctx context.Context, st Stream, key, p int, opts *Options) (*Sharded, error) {
	m := opts.metrics()
	if sh := st.sh; sh != nil && sh.key == key && sh.P() == p {
		m.addReused(sh.Size())
		return sh, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return emptyView(streamName(st), st.Attrs(), key, p)
	}
	if st.rel == nil && st.sh != nil {
		m.addExchanged(st.sh.Size())
		sp := exchangeSpan(opts, st, key, p, st.sh.Size())
		defer sp.End()
		if opts.spill() != nil {
			return streamRepartition(st.sh, key, p, opts)
		}
		return exchangeParts(st.sh, key, p)
	}
	r := st.Rel()
	m.addExchanged(r.Size())
	sp := exchangeSpan(opts, st, key, p, r.Size())
	defer sp.End()
	return partition(r, key, p, opts.spill()), nil
}

// noteSkew records a hot-shard split: the shared routing counter always,
// plus — under tracing — a zero-duration skew event span attached to the
// current stage.
func noteSkew(opts *Options, name string, blocks int) {
	opts.metrics().addSkewSplit()
	if tr := opts.Tracer(); tr != nil {
		sp := tr.Op(trace.KindSkew, "skew split "+name)
		sp.SetNote(fmt.Sprintf("%d blocks", blocks))
		sp.End()
	}
}

// exchangeSpan opens an operator span for a repartition of rows onto
// (key, p), attached to the current stage (nil when tracing is off).
func exchangeSpan(opts *Options, st Stream, key, p, rows int) *trace.Span {
	tr := opts.Tracer()
	if tr == nil {
		return nil
	}
	attrs := st.Attrs()
	name := "exchange " + streamName(st)
	if key >= 0 && key < len(attrs) {
		name += " on " + attrs[key]
	}
	sp := tr.Op(trace.KindExchange, name)
	sp.AddIn(rows)
	sp.AddOut(rows)
	sp.SetShards(p)
	return sp
}

// emptyPart returns — allocating on first call through cur — the single
// canonical empty relation shared by every empty shard slot of one
// operator output, so sparse partitionings pay one allocation per
// operator instead of one per empty shard.
func emptyPart(cur **relation.Relation, name string, attrs []string) *relation.Relation {
	if *cur == nil {
		*cur = relation.New(name, attrs...)
	}
	return *cur
}

// emptyView builds a p-shard view of zero rows: every shard is the same
// canonical empty relation, so sparse plans pay one allocation instead of
// p per empty exchange.
func emptyView(name string, attrs []string, key, p int) (*Sharded, error) {
	if key < 0 || key >= len(attrs) {
		return nil, fmt.Errorf("shard: exchange key %d out of range for %s", key, name)
	}
	if p < 1 {
		p = 1
	}
	empty := relation.New(name, attrs...)
	parts := make([]*relation.Relation, p)
	for k := range parts {
		parts[k] = empty
	}
	return FromParts(name, attrs, key, parts), nil
}

// exchangeParts repartitions an assembled view onto a new key without
// flattening it: each old shard is bucketed by the new key in parallel,
// then each new shard gathers its rows from every old shard in one copy
// (relation.GatherMulti). Zero-length source shards are skipped before
// either pass — a sparse partitioning routes only the shards that hold
// rows.
func exchangeParts(sh *Sharded, key, p int) (*Sharded, error) {
	if key < 0 || key >= len(sh.attrs) {
		return nil, fmt.Errorf("shard: exchange key %d out of range for %s", key, sh.name)
	}
	parts := make([]*relation.Relation, 0, len(sh.sh))
	for _, part := range sh.sh {
		if part.Size() > 0 {
			parts = append(parts, part)
		}
	}
	buckets := make([][][]int32, len(parts)) // buckets[i][k]: rows of part i for new shard k
	_ = pool.Run(context.Background(), 0, len(parts), func(i int) error {
		buckets[i] = partitionRows(parts[i].Column(key), p)
		return nil
	})
	out := make([]*relation.Relation, p)
	if err := pool.Run(context.Background(), 0, p, func(k int) error {
		rows := make([][]int32, len(parts))
		for i := range parts {
			rows[i] = buckets[i][k]
		}
		g, err := relation.GatherMulti(sh.name, sh.attrs, parts, rows)
		if err != nil {
			return err
		}
		out[k] = g
		return nil
	}); err != nil {
		return nil, err
	}
	return FromParts(sh.name, sh.attrs, key, out), nil
}

// streamRepartition is the spill-aware exchangeParts: instead of bucketing
// every source shard in parallel and gathering from all of them at once —
// which needs the whole view resident — it walks the source shards one at
// a time, pinning each only while its rows are bucketed and scattered into
// the output columns. Peak residency is one source shard plus the output;
// row order per new shard (source-major, row order within a source) matches
// exchangeParts exactly. The new shards register with the governor as
// transients of the current evaluation.
func streamRepartition(sh *Sharded, key, p int, opts *Options) (*Sharded, error) {
	if key < 0 || key >= len(sh.attrs) {
		return nil, fmt.Errorf("shard: exchange key %d out of range for %s", key, sh.name)
	}
	arity := len(sh.attrs)
	outCols := make([][][]relation.Value, p) // outCols[k][c]
	for k := range outCols {
		outCols[k] = make([][]relation.Value, arity)
	}
	for _, part := range sh.sh {
		if part.Size() == 0 {
			continue
		}
		part.Pin()
		buckets := partitionRows(part.Column(key), p)
		for c := 0; c < arity; c++ {
			col := part.Column(c)
			for k, rows := range buckets {
				if len(rows) == 0 {
					continue
				}
				dst := outCols[k][c]
				if dst == nil {
					dst = make([]relation.Value, 0, len(rows))
				}
				for _, i := range rows {
					dst = append(dst, col[i])
				}
				outCols[k][c] = dst
			}
		}
		part.Unpin()
	}
	parts := make([]*relation.Relation, p)
	var empty *relation.Relation
	for k := range parts {
		if arity > 0 && outCols[k][0] == nil {
			parts[k] = emptyPart(&empty, sh.name, sh.attrs)
			continue
		}
		parts[k] = relation.NewFromColumns(sh.name, sh.attrs, outCols[k])
		opts.governTransient(parts[k])
	}
	return FromParts(sh.name, sh.attrs, key, parts), nil
}

// alignedPair returns the index into cols of the stream's current partition
// key at count p, or -1 when the stream is flat, differently sized, or
// partitioned on a non-join column.
func alignedPair(st Stream, cols []int, p int) int {
	if st.sh == nil || st.sh.P() != p {
		return -1
	}
	for i, c := range cols {
		if c == st.sh.key {
			return i
		}
	}
	return -1
}

// bestPair picks which shared column pair to partition on when no existing
// partitioning can be reused: the pair whose sides have the most distinct
// values (maximizing the smaller side's count), so hash partitions stay
// balanced. Greedy and statistics-light — V(R,c) is already memoized for
// the planner.
func bestPair(l, r Stream, lCols, rCols []int) int {
	best, bestScore := 0, -1
	for i := range lCols {
		score := l.distinct(lCols[i])
		if d := r.distinct(rCols[i]); d < score {
			score = d
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// task is one partition-parallel unit of work: shard k's slice of the left
// and right inputs. Skew splitting turns one hot shard into several tasks
// whose blocks cover the hot side and whose other side is the same
// (read-only, pointer-replicated) relation.
type task struct {
	shard int
	left  *relation.Relation
	right *relation.Relation
}

// splitHot appends tasks for shard k, splitting whichever side is hot —
// holding more than frac of its side's total rows — into row blocks of
// roughly one average shard each. splitRight controls whether the right
// side may be split (hash joins may split either side; semijoins must keep
// the right side whole, since a row surviving r ⋉ s may match anywhere in
// s).
func splitHot(tasks []task, k int, l, r *relation.Relation, lTotal, rTotal int, frac float64, splitRight bool, opts *Options) []task {
	if frac > 0 {
		if blocks := hotBlocks(l.Size(), lTotal, frac); blocks > 1 {
			noteSkew(opts, l.Name, blocks)
			for _, b := range sliceBlocks(l, blocks) {
				tasks = append(tasks, task{shard: k, left: b, right: r})
			}
			return tasks
		}
		if splitRight {
			if blocks := hotBlocks(r.Size(), rTotal, frac); blocks > 1 {
				noteSkew(opts, r.Name, blocks)
				for _, b := range sliceBlocks(r, blocks) {
					tasks = append(tasks, task{shard: k, left: l, right: b})
				}
				return tasks
			}
		}
	}
	return append(tasks, task{shard: k, left: l, right: r})
}

// hotBlocks returns how many blocks a shard of the given size should split
// into: 1 (no split) unless the shard holds more than frac of its side's
// total, in which case it splits into blocks of about total*frac rows.
func hotBlocks(size, total int, frac float64) int {
	if total <= 0 || float64(size) <= frac*float64(total) {
		return 1
	}
	target := int(frac * float64(total))
	if target < 1 {
		target = 1
	}
	blocks := (size + target - 1) / target
	if blocks < 2 {
		return 1
	}
	return blocks
}

// sliceBlocks cuts r into `blocks` contiguous row-range views (O(arity)
// each, no copying).
func sliceBlocks(r *relation.Relation, blocks int) []*relation.Relation {
	n := r.Size()
	bs := (n + blocks - 1) / blocks
	out := make([]*relation.Relation, 0, blocks)
	for lo := 0; lo < n; lo += bs {
		hi := min(lo+bs, n)
		blk, err := r.Slice(r.Name, lo, hi)
		if err != nil {
			panic(fmt.Sprintf("shard: slicing %s [%d,%d): %v", r.Name, lo, hi, err))
		}
		out = append(out, blk)
	}
	return out
}

// runJoinTasks executes raw hash joins for every task on the pool and
// assembles one raw (all left columns, then all right columns) relation per
// shard; shards with several tasks concatenate their disjoint block
// outputs. Shards without tasks — both sides empty under a sparse
// partitioning, skipped before task generation — stay nil; the caller's
// projection substitutes one shared empty part.
func runJoinTasks(ctx context.Context, tasks []task, pairs [][2]int, p int) ([]*relation.Relation, error) {
	outs := make([]*relation.Relation, len(tasks))
	if err := pool.Run(ctx, 0, len(tasks), func(i int) error {
		out, err := relation.HashJoin(tasks[i].left, tasks[i].right, pairs)
		if err == nil {
			outs[i] = out
		}
		return err
	}); err != nil {
		return nil, err
	}
	perShard := make([][]*relation.Relation, p)
	for i, t := range tasks {
		perShard[t.shard] = append(perShard[t.shard], outs[i])
	}
	raw := make([]*relation.Relation, p)
	for k, parts := range perShard {
		if len(parts) == 0 {
			continue
		}
		if len(parts) == 1 {
			raw[k] = parts[0]
			continue
		}
		flat, err := relation.Concat(parts[0].Name, parts[0].Attrs, parts...)
		if err != nil {
			return nil, err
		}
		raw[k] = flat
	}
	return raw, nil
}

// broadcastRows is the size bound for broadcasting: a misaligned
// partitioned stream is NOT repartitioned when the other side is no larger
// than about one shard of it — probing the whole small side per shard costs
// what a co-partitioned probe would, and the exchange's repartition passes
// over the big side are saved entirely.
func broadcastable(big Stream, small Stream, p int) bool {
	return big.Sharded() != nil && small.Size() <= big.Size()/p+1
}

// NaturalJoinStream is the exchange-routed natural join: l and r join on
// all attribute names they share, partition-parallel when the options and
// schemas allow, and the result stream stays partitioned on the join key
// (or, for broadcasts, on the big side's existing key). Falls back to
// relation.NaturalJoin — counting the fallback — when sharding is disabled,
// the inputs are below Options.MinRows, or the sides share no attribute.
func NaturalJoinStream(ctx context.Context, opts *Options, l, r Stream) (Stream, error) {
	lCols, rCols := relation.SharedColsNames(l.Attrs(), r.Attrs())
	m := opts.metrics()
	if len(lCols) == 0 || !opts.active(max(l.Size(), r.Size())) {
		m.addFallback()
		out, err := relation.NaturalJoin(l.Rel(), r.Rel())
		return StreamOf(out), err
	}
	if err := ctx.Err(); err != nil {
		return Stream{}, err
	}
	p := opts.Count()
	pairs := make([][2]int, len(lCols))
	for i := range lCols {
		pairs[i] = [2]int{lCols[i], rCols[i]}
	}
	attrs, keep := relation.NaturalJoinSchema(l.Attrs(), r.Attrs(), rCols)
	name := joinName(l, r)

	// Reuse an aligned partitioning outright when either side has one.
	pick := alignedPair(l, lCols, p)
	if pick < 0 {
		pick = alignedPair(r, rCols, p)
	}
	if pick < 0 {
		// No alignment. Broadcast instead of repartitioning when one side
		// is partitioned and the other is small enough to probe whole.
		if broadcastable(l, r, p) {
			return broadcastJoin(ctx, opts, l, r, true, pairs, attrs, keep, name)
		}
		if broadcastable(r, l, p) {
			return broadcastJoin(ctx, opts, l, r, false, pairs, attrs, keep, name)
		}
		pick = bestPair(l, r, lCols, rCols)
	}
	lSh, err := Exchange(ctx, l, lCols[pick], p, opts)
	if err != nil {
		return Stream{}, err
	}
	rSh, err := Exchange(ctx, r, rCols[pick], p, opts)
	if err != nil {
		return Stream{}, err
	}
	m.addSharded()
	// Pin both views across task generation and execution: the spill
	// governor must not park a shard between the skew scan and its join.
	lSh.Pin()
	defer lSh.Unpin()
	rSh.Pin()
	defer rSh.Unpin()
	frac := opts.skewFraction()
	lTotal, rTotal := lSh.Size(), rSh.Size()
	var tasks []task
	for k := 0; k < p; k++ {
		lsh, rsh := lSh.Shard(k), rSh.Shard(k)
		if lsh.Size() == 0 || rsh.Size() == 0 {
			continue // empty-shard fast path: the join output is empty
		}
		tasks = splitHot(tasks, k, lsh, rsh, lTotal, rTotal, frac, true, opts)
	}
	raw, err := runJoinTasks(ctx, tasks, pairs, p)
	if err != nil {
		return Stream{}, err
	}
	parts, err := projectRawShards(raw, name, attrs, keep, opts)
	if err != nil {
		return Stream{}, err
	}
	// The join key survives as l's copy at its l-side position.
	return ShardedStream(FromParts(name, attrs, lCols[pick], parts)), nil
}

// broadcastJoin joins a partitioned big side against a small side probed
// whole in every shard: the big side keeps its (misaligned, non-join-key)
// partitioning, which survives into the output because broadcast only
// fires when the key is not a join column — join columns are the only
// columns the natural join drops from the right operand, and left columns
// all survive. bigIsLeft says which natural-join operand (l or r) is the
// partitioned big side; the raw all-l-then-all-r column layout is kept
// either way.
func broadcastJoin(ctx context.Context, opts *Options, l, r Stream, bigIsLeft bool, pairs [][2]int, attrs []string, keep []int, name string) (Stream, error) {
	m := opts.metrics()
	m.addSharded()
	m.addBroadcast()
	big, small := l, r
	if !bigIsLeft {
		big, small = r, l
	}
	sh := big.Sharded()
	m.addReused(sh.Size())
	p := sh.P()
	// The small side is probed whole in every shard, but "whole" does not
	// require flat: a lazily assembled small view joins part by part (the
	// join distributes over the union of its disjoint parts), so sizing and
	// probing never force the Rel() concatenation the stream avoided.
	smallParts := sideParts(small)
	sh.Pin()
	defer sh.Unpin()
	for _, sp := range smallParts {
		sp.Pin()
		defer sp.Unpin()
	}
	frac := opts.skewFraction()
	bigTotal := sh.Size()
	var tasks []task
	for k := 0; k < p; k++ {
		if sh.Shard(k).Size() == 0 {
			continue // empty-shard fast path
		}
		for _, sp := range smallParts {
			if bigIsLeft {
				tasks = splitHot(tasks, k, sh.Shard(k), sp, bigTotal, 0, frac, false, opts)
			} else {
				tasks = splitHot(tasks, k, sp, sh.Shard(k), 0, bigTotal, frac, true, opts)
			}
		}
	}
	raw, err := runJoinTasks(ctx, tasks, pairs, p)
	if err != nil {
		return Stream{}, err
	}
	parts, err := projectRawShards(raw, name, attrs, keep, opts)
	if err != nil {
		return Stream{}, err
	}
	// The big side's partition key in the output schema: left columns keep
	// their positions; right columns sit at lArity+c in the raw layout.
	rawKey := sh.key
	if !bigIsLeft {
		rawKey += len(l.Attrs())
	}
	outKey := indexOfKept(keep, rawKey)
	if outKey < 0 {
		return Stream{}, fmt.Errorf("shard: broadcast key column of %s dropped by the join projection", name)
	}
	return ShardedStream(FromParts(name, attrs, outKey, parts)), nil
}

// sideParts returns a stream's rows as a list of disjoint nonempty
// relations without materializing anything: the flat relation when one
// already exists (including a lazy view whose concatenation was already
// forced), the nonempty shards of an assembled view otherwise.
func sideParts(st Stream) []*relation.Relation {
	sh := st.Sharded()
	if sh == nil || sh.Materialized() {
		if r := st.Rel(); r != nil && r.Size() > 0 {
			return []*relation.Relation{r}
		}
		return nil
	}
	var parts []*relation.Relation
	for k := 0; k < sh.P(); k++ {
		if s := sh.Shard(k); s.Size() > 0 {
			parts = append(parts, s)
		}
	}
	return parts
}

// indexOfKept returns the output position of raw-join column c, or -1 when
// the natural-join projection dropped it.
func indexOfKept(keep []int, c int) int {
	for i, k := range keep {
		if k == c {
			return i
		}
	}
	return -1
}

// projectRawShards applies the natural-join projection (an O(arity)
// copy-on-write view per shard) to raw per-shard join outputs, registering
// each nonempty part with the spill governor as a transient of the
// current evaluation. Shards the join skipped (nil: both sides empty)
// share one canonical empty part.
func projectRawShards(raw []*relation.Relation, name string, attrs []string, keep []int, opts *Options) ([]*relation.Relation, error) {
	parts := make([]*relation.Relation, len(raw))
	var empty *relation.Relation
	for k, rel := range raw {
		if rel == nil {
			parts[k] = emptyPart(&empty, name, attrs)
			continue
		}
		v, err := rel.ProjectView(name, attrs, keep...)
		if err != nil {
			return nil, err
		}
		opts.governTransient(v)
		parts[k] = v
	}
	return parts, nil
}

// joinName names a join output stream.
func joinName(l, r Stream) string {
	return streamName(l) + "_nj_" + streamName(r)
}

func streamName(st Stream) string {
	if st.rel != nil {
		return st.rel.Name
	}
	if st.sh != nil {
		return st.sh.name
	}
	return "nil"
}

// SemijoinStream is the exchange-routed l ⋉ r on shared attribute names.
// Because a semijoin's output is a subset of l, ANY existing partitioning
// of l survives: an aligned l co-partitions with an exchanged r, a
// misaligned l probes r whole per shard (a broadcast — no repartition is
// ever needed on the l side), and a flat l is partitioned on the best
// shared pair. Falls back to relation.Semijoin under the usual rules.
func SemijoinStream(ctx context.Context, opts *Options, l, r Stream) (Stream, error) {
	lCols, rCols := relation.SharedColsNames(l.Attrs(), r.Attrs())
	m := opts.metrics()
	if len(lCols) == 0 || !opts.active(max(l.Size(), r.Size())) {
		m.addFallback()
		out, err := relation.Semijoin(l.Rel(), r.Rel())
		return StreamOf(out), err
	}
	if err := ctx.Err(); err != nil {
		return Stream{}, err
	}
	p := opts.Count()
	frac := opts.skewFraction()

	if pick := alignedPair(l, lCols, p); pick >= 0 {
		// Co-partitioned: l's shards semijoin r's matching shards.
		lSh := l.Sharded()
		m.addReused(lSh.Size())
		rSh, err := Exchange(ctx, r, rCols[pick], p, opts)
		if err != nil {
			return Stream{}, err
		}
		m.addSharded()
		return semijoinTasks(ctx, opts, lSh, func(k int) []*relation.Relation { return []*relation.Relation{rSh.Shard(k)} }, lCols, rCols, frac, m)
	}
	if l.Sharded() != nil {
		// Misaligned l: probe the whole of r from every shard. l's
		// partitioning survives (the output is a subset of l), so the
		// exchange the next operator would need is still saved. A lazily
		// assembled r is probed part by part (a row survives when it matches
		// in ANY part), never forcing its Rel() concatenation.
		m.addSharded()
		m.addBroadcast()
		m.addReused(l.Size())
		rParts := sideParts(r)
		return semijoinTasks(ctx, opts, l.Sharded(), func(int) []*relation.Relation { return rParts }, lCols, rCols, frac, m)
	}
	// Flat l: partition both sides on the highest-cardinality shared pair.
	pick := bestPair(l, r, lCols, rCols)
	lSh, err := Exchange(ctx, l, lCols[pick], p, opts)
	if err != nil {
		return Stream{}, err
	}
	rSh, err := Exchange(ctx, r, rCols[pick], p, opts)
	if err != nil {
		return Stream{}, err
	}
	m.addSharded()
	return semijoinTasks(ctx, opts, lSh, func(k int) []*relation.Relation { return []*relation.Relation{rSh.Shard(k)} }, lCols, rCols, frac, m)
}

// sjTask is one partition-parallel semijoin unit: shard k's slice of the
// left side probing a list of disjoint right parts (one co-partitioned
// shard, or every part of a broadcast side).
type sjTask struct {
	shard  int
	left   *relation.Relation
	rights []*relation.Relation
}

// semijoinTasks runs the per-shard semijoins of lSh against the parts
// rAt(k) returns, splitting hot l shards into blocks (the r side is never
// split — a surviving row may match anywhere in r, which is also why the
// rights travel as a list probed via SemijoinOnParts rather than being
// concatenated). The output keeps lSh's key. Shards whose l side or r side
// is empty skip task generation — the result is empty either way (the
// routing layer only reaches here with at least one shared column) — and
// share one canonical empty part. Both sides stay pinned for the duration;
// nonempty outputs register with the options' spill governor.
func semijoinTasks(ctx context.Context, opts *Options, lSh *Sharded, rAt func(int) []*relation.Relation, lCols, rCols []int, frac float64, m *Metrics) (Stream, error) {
	p := lSh.P()
	lTotal := lSh.Size()
	lSh.Pin()
	defer lSh.Unpin()
	pinned := map[*relation.Relation]bool{}
	var tasks []sjTask
	for k := 0; k < p; k++ {
		l, rights := lSh.Shard(k), rAt(k)
		rTotal := 0
		for _, r := range rights {
			rTotal += r.Size()
		}
		if l.Size() == 0 || rTotal == 0 {
			continue // empty-shard fast path: l ⋉ r is empty
		}
		for _, r := range rights {
			if !pinned[r] {
				pinned[r] = true
				r.Pin()
				defer r.Unpin()
			}
		}
		if blocks := hotBlocks(l.Size(), lTotal, frac); frac > 0 && blocks > 1 {
			noteSkew(opts, l.Name, blocks)
			for _, b := range sliceBlocks(l, blocks) {
				tasks = append(tasks, sjTask{shard: k, left: b, rights: rights})
			}
		} else {
			tasks = append(tasks, sjTask{shard: k, left: l, rights: rights})
		}
	}
	outs := make([]*relation.Relation, len(tasks))
	if err := pool.Run(ctx, 0, len(tasks), func(i int) error {
		out, err := relation.SemijoinOnParts(tasks[i].left, tasks[i].rights, lCols, rCols)
		if err == nil {
			outs[i] = out
		}
		return err
	}); err != nil {
		return Stream{}, err
	}
	perShard := make([][]*relation.Relation, p)
	for i, t := range tasks {
		perShard[t.shard] = append(perShard[t.shard], outs[i])
	}
	parts := make([]*relation.Relation, p)
	var empty *relation.Relation
	for k, ps := range perShard {
		switch len(ps) {
		case 0:
			parts[k] = emptyPart(&empty, lSh.name+"_sj", lSh.attrs)
			continue
		case 1:
			parts[k] = ps[0]
		default:
			flat, err := relation.Concat(ps[0].Name, lSh.attrs, ps...)
			if err != nil {
				return Stream{}, err
			}
			parts[k] = flat
		}
		opts.governTransient(parts[k])
	}
	return ShardedStream(FromParts(lSh.name+"_sj", lSh.attrs, lSh.key, parts)), nil
}

// ProjectStream is the exchange-routed duplicate-eliminating projection of
// st onto the given positions (repeats allowed, as in relation.ProjectIdx).
// A stream whose partition key is among the kept columns projects each
// shard independently — all duplicates of a projected tuple agree on every
// kept column, including the key, so they share a shard — and stays
// partitioned. Otherwise the stream is exchanged onto the kept column with
// the most distinct values first. Falls back to relation.ProjectIdx below
// Options.MinRows.
func ProjectStream(ctx context.Context, opts *Options, st Stream, idx []int) (Stream, error) {
	m := opts.metrics()
	if len(idx) == 0 || !opts.active(st.Size()) {
		m.addFallback()
		out, err := st.Rel().ProjectIdx(idx...)
		return StreamOf(out), err
	}
	if err := ctx.Err(); err != nil {
		return Stream{}, err
	}
	arity := len(st.Attrs())
	for _, c := range idx {
		if c < 0 || c >= arity {
			m.addFallback()
			out, err := st.Rel().ProjectIdx(idx...) // surface the range error unsharded
			return StreamOf(out), err
		}
	}
	p := opts.Count()
	key := -1
	if sh := st.Sharded(); sh != nil && sh.P() == p {
		for _, c := range idx {
			if c == sh.key {
				key = c
				break
			}
		}
	}
	if key < 0 {
		// Exchange onto the kept column with the most distinct values, so
		// hash partitions of the projected output stay balanced.
		bestScore := -1
		for _, c := range idx {
			if d := st.distinct(c); d > bestScore {
				key, bestScore = c, d
			}
		}
	}
	sh, err := Exchange(ctx, st, key, p, opts)
	if err != nil {
		return Stream{}, err
	}
	m.addSharded()
	sh.Pin()
	defer sh.Unpin()
	// Empty shards share one projected empty part instead of each paying a
	// ProjectIdx allocation (computed eagerly so the parallel pass below
	// can assign it without synchronization).
	var emptyProj *relation.Relation
	for k := 0; k < p; k++ {
		if sh.Shard(k).Size() == 0 {
			ep, err := relation.New(sh.name, sh.attrs...).ProjectIdx(idx...)
			if err != nil {
				return Stream{}, err
			}
			emptyProj = ep
			break
		}
	}
	parts := make([]*relation.Relation, p)
	if err := pool.Run(ctx, 0, p, func(k int) error {
		if sh.Shard(k).Size() == 0 {
			parts[k] = emptyProj
			return nil
		}
		out, err := sh.Shard(k).ProjectIdx(idx...)
		if err == nil {
			opts.governTransient(out)
			parts[k] = out
		}
		return err
	}); err != nil {
		return Stream{}, err
	}
	// The key's position in the projected schema: its first occurrence in
	// idx.
	outKey := 0
	for i, c := range idx {
		if c == key {
			outKey = i
			break
		}
	}
	return ShardedStream(FromParts(sh.name+"_proj", parts[0].Attrs, outKey, parts)), nil
}
