package shard

// Partitioned views and their construction. Package documentation lives in
// doc.go; the exchange router that moves views between partition keys is in
// exchange.go, the partition-parallel operators in ops.go.

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"cqbound/internal/batch"
	"cqbound/internal/pool"
	"cqbound/internal/relation"
	"cqbound/internal/spill"
	"cqbound/internal/trace"
)

// Options controls when and how the sharded operators engage. A nil
// *Options disables sharding entirely: every operator falls back to its
// single-shard relation-package form. A non-nil zero value means "shard
// everything": threshold 0 with GOMAXPROCS shards and default skew
// handling.
type Options struct {
	// MinRows is the row threshold: an operator runs partition-parallel
	// only when its larger input has at least MinRows rows. Small inputs
	// aren't worth the partitioning pass.
	MinRows int
	// Shards is the partition count P; <= 0 means GOMAXPROCS.
	Shards int
	// SkewFraction is the hot-shard trigger: when one shard of an
	// operator's probe side holds more than this fraction of the side's
	// rows — one dominant key value hashes every matching row into a
	// single shard — the shard is split into row blocks that each join
	// against the (pointer-replicated, read-only) co-shard, restoring
	// per-worker balance. 0 means the default (0.25); negative disables
	// splitting.
	SkewFraction float64
	// Metrics, when non-nil, counts the routing decisions (sharded vs
	// fallback, reused vs repartitioned rows, broadcasts, skew splits) of
	// every operator run under these options.
	Metrics *Metrics
	// Spill, when non-nil, registers every shard built under these options
	// — memoized base partitions and assembled operator outputs alike —
	// with the memory governor, which parks cold shards in file-backed
	// segments when its byte budget is exceeded. Operators pin the shards
	// they touch for their duration; repartitioning governed views streams
	// one source shard at a time instead of holding them all resident. nil
	// keeps everything in memory.
	Spill *spill.Governor
	// Scope, when non-nil alongside Spill, collects the buffers of
	// TRANSIENT shards — assembled operator outputs, repartitioned views —
	// so the caller can discard them in bulk once the evaluation's result
	// has been materialized (Engine.Evaluate closes one scope per call).
	// Memoized base partitions are never scoped: they outlive evaluations
	// by design. nil retains intermediates in the governor until its
	// Close.
	Scope *spill.Scope
	// BatchSize, when positive, turns on streamed execution: the executors
	// build pull-based column-batch pipelines (internal/batch) of this many
	// rows per batch through the Piped operators instead of materializing
	// every operator output. 0 keeps the materialized operators.
	BatchSize int
	// Batch, when non-nil alongside BatchSize, counts what the streamed
	// pipelines did (batches, rows, buffered fallbacks, bytes never
	// materialized). Shared across concurrent evaluations like Metrics.
	Batch *batch.Metrics
	// Trace, when non-nil, is the per-evaluation tracer: executors open
	// stage and operator spans on it, and the exchange/skew machinery in
	// this package attaches routing spans to whatever stage is current.
	// Unlike Metrics and Batch it is never shared: the Engine threads a
	// fresh Tracer through each traced evaluation's private Options copy.
	Trace *trace.Tracer
}

// Streaming reports whether these options select streamed (column-batch
// pipeline) execution (nil-safe).
func (o *Options) Streaming() bool { return o != nil && o.BatchSize > 0 }

// Tracer returns the per-evaluation tracer (nil-safe; nil disables
// tracing). Executors in eval/plan open their spans through it.
func (o *Options) Tracer() *trace.Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// batchSize returns the configured batch row count (nil-safe; 0 lets the
// batch package use its default).
func (o *Options) batchSize() int {
	if o == nil {
		return 0
	}
	return o.BatchSize
}

// batchMetrics returns the streamed-execution counters (nil-safe; nil
// disables counting).
func (o *Options) batchMetrics() *batch.Metrics {
	if o == nil {
		return nil
	}
	return o.Batch
}

// defaultSkewFraction is the hot-shard trigger used when Options leaves
// SkewFraction zero: a shard holding over a quarter of its side's rows
// serializes at least a quarter of the work on one worker, which is where
// splitting starts to pay.
const defaultSkewFraction = 0.25

// Count returns the partition count P the options select (nil-safe).
func (o *Options) Count() int {
	if o == nil || o.Shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Shards
}

// active reports whether an operator whose larger input has n rows should
// run partition-parallel under these options.
func (o *Options) active(n int) bool {
	return o != nil && o.Count() > 1 && n >= o.MinRows
}

// skewFraction returns the effective hot-shard trigger: the configured
// fraction, the default when unset, or 0 (disabled) when negative.
func (o *Options) skewFraction() float64 {
	if o == nil || o.SkewFraction < 0 {
		return 0
	}
	if o.SkewFraction == 0 {
		return defaultSkewFraction
	}
	return o.SkewFraction
}

// metrics returns the options' counters (nil-safe; nil disables counting).
func (o *Options) metrics() *Metrics {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// spill returns the options' memory governor (nil-safe; nil keeps every
// shard resident).
func (o *Options) spill() *spill.Governor {
	if o == nil {
		return nil
	}
	return o.Spill
}

// governTransient registers a freshly built, unpublished intermediate
// shard with the governor and tracks its buffer in the evaluation's
// scope for end-of-evaluation discard. No-op without a governor.
func (o *Options) governTransient(r *relation.Relation) {
	g := o.spill()
	if g == nil {
		return
	}
	r.Govern(g)
	if o.Scope != nil {
		if b := r.Buffer(); b != nil {
			o.Scope.Track(b)
		}
	}
}

// ShardOf returns the shard in [0, p) holding value v. The assignment
// depends only on (v, p), so any two relations partitioned with the same P
// on columns holding the same value are co-partitioned. Interned IDs are
// small sequential integers; the multiplicative mix keeps consecutive IDs
// from landing in consecutive shards.
func ShardOf(v relation.Value, p int) int {
	h := uint64(uint32(v)) * 0x9E3779B1 // Fibonacci hashing; spread bits
	return int((h >> 16) % uint64(p))
}

// Sharded is a hash-partitioned view of a relation: shard k holds exactly
// the rows whose key-column value hashes to k. Shards are plain relations
// carrying the view's schema. Views come from two constructors: Partition
// splits an existing flat relation (memoized on the relation per (key, P)),
// and FromParts assembles a view from per-shard operator outputs that are
// partitioned by construction — the latter never materializes a flat
// relation unless Rel is called.
type Sharded struct {
	name  string
	attrs []string
	key   int
	sh    []*relation.Relation

	// eager is the flat form when the view was built by Partition: the
	// relation that was split. Immutable after construction, so it may be
	// read without synchronization.
	eager *relation.Relation
	// lazy is the flat form of an assembled (FromParts) view, built on
	// first Rel call; it is only written inside baseOnce.Do and only read
	// after the Do returns, which is the sync.Once happens-before edge.
	// lazyBuilt flips (inside the Do) once lazy exists, so Materialized can
	// answer without forcing the build.
	baseOnce  sync.Once
	lazy      *relation.Relation
	lazyBuilt atomic.Bool
}

// Key returns the partition column (a position into Attrs()).
func (s *Sharded) Key() int { return s.key }

// P returns the partition count.
func (s *Sharded) P() int { return len(s.sh) }

// Attrs returns the view's attribute names. The slice is the view's
// storage: treat it as read-only.
func (s *Sharded) Attrs() []string { return s.attrs }

// Shard returns shard k. The relation is the view's storage: treat it as
// read-only (it may be memoized and shared with concurrent evaluations).
func (s *Sharded) Shard(k int) *relation.Relation { return s.sh[k] }

// Pin holds every shard of the view resident until Unpin: the spill
// governor will not park any of them mid-operator. No-op for ungoverned
// shards. Operators pin the views they fan out over for their duration.
func (s *Sharded) Pin() {
	for _, sh := range s.sh {
		sh.Pin()
	}
}

// Unpin releases a Pin.
func (s *Sharded) Unpin() {
	for _, sh := range s.sh {
		sh.Unpin()
	}
}

// Size returns the total row count across shards without materializing the
// flat relation. It never touches the lazily-built flat form, so it is
// safe to call concurrently with Rel (parallel passes share Streams).
func (s *Sharded) Size() int {
	if s.eager != nil {
		return s.eager.Size()
	}
	n := 0
	for _, sh := range s.sh {
		n += sh.Size()
	}
	return n
}

// Rel returns the flat relation the view partitions. For a view built by
// Partition it is the original relation; for a view assembled from operator
// outputs it is materialized on first call by concatenating the shards
// (shards are disjoint, so no dedup pass). Safe for concurrent callers.
func (s *Sharded) Rel() *relation.Relation {
	if s.eager != nil {
		return s.eager
	}
	s.baseOnce.Do(func() {
		flat, err := relation.Concat(s.name, s.attrs, s.sh...)
		if err != nil {
			panic(fmt.Sprintf("shard: materializing %s: %v", s.name, err))
		}
		s.lazy = flat
		s.lazyBuilt.Store(true)
	})
	return s.lazy
}

// Materialized reports whether the view already has a flat relation — the
// original for a Partition view, a built lazy concat for an assembled one —
// so callers can choose between the flat form and the per-shard parts
// without forcing the concatenation they are trying to avoid.
func (s *Sharded) Materialized() bool {
	return s.eager != nil || s.lazyBuilt.Load()
}

// FromParts assembles a Sharded view from per-shard relations that are
// already partitioned on column key: part k must hold only rows whose key
// value hashes to shard k of len(parts). This is how operator outputs stay
// sharded end to end — a co-partitioned join's shard-k output carries its
// key value, so it IS shard k of the output — without paying a
// concatenation the next operator may never need.
func FromParts(name string, attrs []string, key int, parts []*relation.Relation) *Sharded {
	if key < 0 || key >= len(attrs) {
		panic(fmt.Sprintf("shard: FromParts key %d out of range for %v", key, attrs))
	}
	return &Sharded{name: name, attrs: attrs, key: key, sh: parts}
}

// parallelPartitionMinRows is the size at which the partition build fans
// its bucket and scatter passes out over the worker pool; below it the
// sequential two-pass build wins on setup cost.
const parallelPartitionMinRows = 1 << 14

// Partition hash-partitions r by column key into p shards. p < 2 (or an
// empty relation under p == 1) returns a single-shard view of r itself with
// no copying. The partition is built once per (key, p) and memoized in r's
// size-keyed memo table — shared with renamed and cloned views, rebuilt
// after inserts — so only the first evaluation over a base relation pays
// the build. Large relations bucket, scatter and gather block-parallel over
// internal/pool; the build itself is not cancelable (it is bounded by two
// O(n) passes), callers cancel between operator steps.
func Partition(r *relation.Relation, key, p int) *Sharded {
	return partition(r, key, p, nil)
}

// partition is Partition threading the spill governor: when g is non-nil,
// every freshly built nonempty shard registers with it at construction
// (before the memoized slice is published, so no reader races the storage
// handoff). The memo is shared across governors: the first builder's
// governor manages the shards, later callers reuse them either way —
// governed storage reads identically everywhere. Empty buckets share one
// canonical empty relation instead of allocating per-shard columns, so
// sparse partitionings (P far above the key's distinct values) don't pay
// per-shard overhead.
func partition(r *relation.Relation, key, p int, g *spill.Governor) *Sharded {
	if key < 0 || key >= r.Arity() {
		panic(fmt.Sprintf("shard: partition column %d out of range for %s", key, r.Name))
	}
	if p < 2 {
		return &Sharded{name: r.Name, attrs: r.Attrs, key: key, eager: r, sh: []*relation.Relation{r}}
	}
	memoKey := fmt.Sprintf("shard:%d:%d", key, p)
	shards := r.Memo(memoKey, func() any {
		r.Pin()
		defer r.Unpin()
		buckets := partitionRows(r.Column(key), p)
		empty := relation.New(r.Name, r.Attrs...)
		out := make([]*relation.Relation, p)
		_ = pool.Run(context.Background(), 0, p, func(k int) error {
			if len(buckets[k]) == 0 {
				out[k] = empty
				return nil
			}
			out[k] = r.Gather(r.Name, buckets[k])
			out[k].Govern(g)
			return nil
		})
		return out
	}).([]*relation.Relation)
	// The memo may have been built under a differently-named view of the
	// same storage (Memo delegates to the parent relation); serve this
	// caller its own attribute names through O(arity) copy-on-write renames.
	if len(shards) > 0 && !slices.Equal(shards[0].Attrs, r.Attrs) {
		renamed := make([]*relation.Relation, len(shards))
		for k, sh := range shards {
			rs, err := sh.Rename(r.Name, r.Attrs...)
			if err != nil {
				panic(fmt.Sprintf("shard: renaming shard of %s: %v", r.Name, err))
			}
			renamed[k] = rs
		}
		shards = renamed
	}
	return &Sharded{name: r.Name, attrs: r.Attrs, key: key, eager: r, sh: shards}
}

// partitionRows buckets row indices of a key column into p shards. Small
// columns take the sequential two-pass build (count, then append); large
// ones run three block-parallel passes — per-block counts, a sequential
// prefix over the tiny blocks×p count matrix, then a scatter where each
// block writes its rows into disjoint ranges of the shared bucket arrays.
// Row order within a shard matches the sequential build exactly, so the
// parallel path is a pure speedup, not a behavior change.
func partitionRows(col []relation.Value, p int) [][]int32 {
	n := len(col)
	workers := pool.DefaultWorkers()
	if n < parallelPartitionMinRows || workers < 2 {
		counts := make([]int, p)
		for _, v := range col {
			counts[ShardOf(v, p)]++
		}
		buckets := make([][]int32, p)
		for k := range buckets {
			buckets[k] = make([]int32, 0, counts[k])
		}
		for i, v := range col {
			k := ShardOf(v, p)
			buckets[k] = append(buckets[k], int32(i))
		}
		return buckets
	}
	blocks := workers
	bs := (n + blocks - 1) / blocks
	counts := make([][]int32, blocks) // counts[b][k]: block b's rows for shard k
	_ = pool.Run(context.Background(), 0, blocks, func(b int) error {
		cnt := make([]int32, p)
		lo, hi := b*bs, min((b+1)*bs, n)
		for _, v := range col[lo:hi] {
			cnt[ShardOf(v, p)]++
		}
		counts[b] = cnt
		return nil
	})
	// offs[b][k] is where block b starts writing inside bucket k; blocks
	// write disjoint ranges, so the scatter pass is race-free.
	offs := make([][]int32, blocks)
	for b := range offs {
		offs[b] = make([]int32, p)
	}
	totals := make([]int32, p)
	for k := 0; k < p; k++ {
		var run int32
		for b := 0; b < blocks; b++ {
			offs[b][k] = run
			run += counts[b][k]
		}
		totals[k] = run
	}
	buckets := make([][]int32, p)
	for k := range buckets {
		buckets[k] = make([]int32, totals[k])
	}
	_ = pool.Run(context.Background(), 0, blocks, func(b int) error {
		pos := append([]int32(nil), offs[b]...)
		lo, hi := b*bs, min((b+1)*bs, n)
		for i := lo; i < hi; i++ {
			k := ShardOf(col[i], p)
			buckets[k][pos[k]] = int32(i)
			pos[k]++
		}
		return nil
	})
	return buckets
}
