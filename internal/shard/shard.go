// Package shard is the horizontal-scaling layer over the interned columnar
// store: a Sharded relation view hash-partitions a relation's rows by one
// key column into P shards, each a normal *relation.Relation, so the
// memoized statistics, hash indexes and tries of the relation package keep
// working unchanged per shard. Partition-parallel operators (sharded scan,
// co-partitioned HashJoin, Semijoin and projection) fan the per-shard work
// out over internal/pool with context cancellation.
//
// The paper's bounds govern how large outputs and intermediates can get
// (AGM/ρ*, Corollary 4.8, Yannakakis for acyclic queries); partitioning is
// the orthogonal lever that decides how fast each bounded-size pass runs.
// Because a value's shard depends only on the value and P, two relations
// partitioned on a shared join column with the same P are co-partitioned:
// shard k of one side joins only shard k of the other, making every binary
// join and semijoin embarrassingly parallel across shards — and, even on a
// single core, splitting one large hash map into P cache-sized ones.
//
// Partitioning is statistics-light by design (janus-datalog's "greedy beats
// optimal" production lesson): the partition key is the planner-visible
// join column with the most distinct values, P defaults to GOMAXPROCS, and
// there is no cost model — operators whose join key cannot align with a
// partition key simply fall back to single-shard execution.
package shard

import (
	"fmt"
	"runtime"
	"slices"

	"cqbound/internal/relation"
)

// Options controls when and how the sharded operators engage. A nil
// *Options disables sharding entirely: every operator falls back to its
// single-shard relation-package form. A non-nil zero value means "shard
// everything": threshold 0 with GOMAXPROCS shards.
type Options struct {
	// MinRows is the row threshold: an operator runs partition-parallel
	// only when its larger input has at least MinRows rows. Small inputs
	// aren't worth the partitioning pass.
	MinRows int
	// Shards is the partition count P; <= 0 means GOMAXPROCS.
	Shards int
}

// Count returns the partition count P the options select (nil-safe).
func (o *Options) Count() int {
	if o == nil || o.Shards <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Shards
}

// active reports whether an operator whose larger input has n rows should
// run partition-parallel under these options.
func (o *Options) active(n int) bool {
	return o != nil && o.Count() > 1 && n >= o.MinRows
}

// ShardOf returns the shard in [0, p) holding value v. The assignment
// depends only on (v, p), so any two relations partitioned with the same P
// on columns holding the same value are co-partitioned. Interned IDs are
// small sequential integers; the multiplicative mix keeps consecutive IDs
// from landing in consecutive shards.
func ShardOf(v relation.Value, p int) int {
	h := uint64(uint32(v)) * 0x9E3779B1 // Fibonacci hashing; spread bits
	return int((h >> 16) % uint64(p))
}

// Sharded is a hash-partitioned view of a relation: shard k holds exactly
// the rows whose key-column value hashes to k. Shards are plain relations
// carrying the base relation's schema; the partition is memoized on the
// base relation per (key, P), so repeated evaluations of the same query —
// the serving hot path — re-partition nothing.
type Sharded struct {
	base   *relation.Relation
	key    int
	shards []*relation.Relation
}

// Base returns the relation the view partitions.
func (s *Sharded) Base() *relation.Relation { return s.base }

// Key returns the partition column (a position into Base().Attrs).
func (s *Sharded) Key() int { return s.key }

// P returns the partition count.
func (s *Sharded) P() int { return len(s.shards) }

// Shard returns shard k. The relation is the view's storage: treat it as
// read-only (it may be memoized and shared with concurrent evaluations).
func (s *Sharded) Shard(k int) *relation.Relation { return s.shards[k] }

// Size returns the total row count across shards (== Base().Size()).
func (s *Sharded) Size() int { return s.base.Size() }

// Partition hash-partitions r by column key into p shards. p < 2 (or an
// empty relation under p == 1) returns a single-shard view of r itself with
// no copying. The partition is built once per (key, p) and memoized in r's
// size-keyed memo table — shared with renamed and cloned views, rebuilt
// after inserts — so only the first evaluation over a base relation pays
// the two O(n) passes (bucket, then columnar gather).
func Partition(r *relation.Relation, key, p int) *Sharded {
	if key < 0 || key >= r.Arity() {
		panic(fmt.Sprintf("shard: partition column %d out of range for %s", key, r.Name))
	}
	if p < 2 {
		return &Sharded{base: r, key: key, shards: []*relation.Relation{r}}
	}
	memoKey := fmt.Sprintf("shard:%d:%d", key, p)
	shards := r.Memo(memoKey, func() any {
		col := r.Column(key)
		buckets := make([][]int32, p)
		counts := make([]int, p)
		for _, v := range col {
			counts[ShardOf(v, p)]++
		}
		for k := range buckets {
			buckets[k] = make([]int32, 0, counts[k])
		}
		for i, v := range col {
			k := ShardOf(v, p)
			buckets[k] = append(buckets[k], int32(i))
		}
		out := make([]*relation.Relation, p)
		for k := range out {
			out[k] = r.Gather(r.Name, buckets[k])
		}
		return out
	}).([]*relation.Relation)
	// The memo may have been built under a differently-named view of the
	// same storage (Memo delegates to the parent relation); serve this
	// caller its own attribute names through O(arity) copy-on-write renames.
	if len(shards) > 0 && !slices.Equal(shards[0].Attrs, r.Attrs) {
		renamed := make([]*relation.Relation, len(shards))
		for k, sh := range shards {
			rs, err := sh.Rename(r.Name, r.Attrs...)
			if err != nil {
				panic(fmt.Sprintf("shard: renaming shard of %s: %v", r.Name, err))
			}
			renamed[k] = rs
		}
		shards = renamed
	}
	return &Sharded{base: r, key: key, shards: shards}
}
