package shard

// Incremental partition maintenance for epoch-published relations: when a
// commit extends a relation by a delta segment, the successor's hash
// partitions are derived from the base's memoized ones instead of
// re-bucketing the whole relation. Shards the delta does not touch are
// reused by pointer — the epoch-retirement sweep keys on exactly this
// sharing to discard only the buffers no surviving epoch can reach.

import (
	"fmt"

	"cqbound/internal/relation"
	"cqbound/internal/spill"
)

// ExtendPartitions derives next's memoized hash partitions from prev's:
// for every valid partition memo of prev (key format shard:<col>:<P>),
// the delta rows [prev.Size(), next.Size()) are bucketed by ShardOf,
// untouched shards carry over by pointer, and touched shards concatenate
// the old shard with the delta's rows into a fresh relation registered
// with g (nil g leaves them ungoverned, like Partition). The derived
// slices are installed in next's memo table, so the first evaluation of
// the new epoch finds its partitions warm. Returns how many partition
// memos were extended. The caller (the Engine's commit path) serializes
// calls and guarantees next extends prev.
func ExtendPartitions(prev, next *relation.Relation, g *spill.Governor) int {
	oldN, newN := prev.Size(), next.Size()
	count := 0
	prev.EachMemo(func(key string, v any, valid bool) bool {
		if !valid {
			return true
		}
		var kc, p int
		if n, err := fmt.Sscanf(key, "shard:%d:%d", &kc, &p); n != 2 || err != nil {
			return true
		}
		shards, ok := v.([]*relation.Relation)
		if !ok || len(shards) != p || kc < 0 || kc >= next.Arity() {
			return true
		}
		col := next.Column(kc)
		addRows := make([][]int32, p)
		for i := oldN; i < newN; i++ {
			k := ShardOf(col[i], p)
			addRows[k] = append(addRows[k], int32(i))
		}
		out := make([]*relation.Relation, p)
		for k := 0; k < p; k++ {
			switch {
			case len(addRows[k]) == 0:
				// Untouched: the successor's shard IS the base's. A reader
				// of either epoch probes the same governed buffer, and the
				// retirement sweep sees it reachable from the survivor.
				out[k] = shards[k]
			case shards[k].Size() == 0:
				ns := next.Gather(next.Name, addRows[k])
				ns.Govern(g)
				out[k] = ns
			default:
				ns, err := relation.Concat(next.Name, shards[k].Attrs, shards[k], next.Gather(next.Name, addRows[k]))
				if err != nil {
					return true // arities always agree; skip defensively
				}
				ns.Govern(g)
				out[k] = ns
			}
		}
		next.InstallMemo(key, out)
		count++
		return true
	})
	return count
}
