// Package shard is the horizontal-scaling layer over the interned columnar
// store: relations are hash-partitioned by a key column into P shards —
// each a normal *relation.Relation, so the memoized statistics, hash
// indexes and tries of the relation package keep working unchanged per
// shard — and the package's operators run joins, semijoins, scans and
// duplicate-eliminating projections shard by shard over internal/pool with
// context cancellation.
//
// The paper's bounds govern how large outputs and intermediates can get
// (AGM/ρ*, Corollary 4.8, Yannakakis for acyclic queries); partitioning is
// the orthogonal lever that decides how fast each bounded-size pass runs.
// Because a value's shard depends only on (value, P) — see ShardOf — two
// relations partitioned on a shared join column with the same P are
// co-partitioned: shard k of one side joins only shard k of the other,
// making every binary join and semijoin embarrassingly parallel across
// shards and, even on a single core, splitting one large hash map into P
// cache-sized ones.
//
// # When does a join run sharded?
//
// Every routing operator (NaturalJoinStream, SemijoinStream,
// ProjectStream, and their flat NaturalJoin/Semijoin/ProjectIdx wrappers)
// decides per call, in this order:
//
//  1. Fallback. If opts is nil, P < 2, the larger input is below
//     Options.MinRows, or the sides share no attribute to partition on,
//     the single-shard relation-package operator runs and the fallback is
//     counted in Options.Metrics. Callers thread one code path regardless
//     of configuration, and outputs are identical either way.
//  2. Reuse. If either input arrives as a Stream partitioned on one of
//     the join columns at the right P, that partitioning is reused as is
//     and only the other side is exchanged to match. This is the
//     zero-cost case end-to-end sharding exists for: a co-partitioned
//     join's shard-k output carries its key value, so it IS shard k of
//     the output, and the result stream stays partitioned without ever
//     being concatenated (Sharded.Rel materializes lazily).
//  3. Broadcast. If one side is partitioned on a non-join column
//     (misaligned) and the other side is no larger than about one shard
//     of it, the big side keeps its partitioning and every shard probes
//     the small side whole. Semijoins broadcast whenever their left side
//     is misaligned — a semijoin output is a subset of its left input, so
//     any existing partitioning survives and repartitioning is never
//     needed on that side.
//  4. Exchange. Otherwise both sides are aligned to the shared column
//     pair with the most distinct values (balanced hash partitions):
//     flat relations partition through the per-(key, P) memo; partitioned
//     streams repartition shard-to-shard with one bucket pass and a
//     single-copy multi-gather, never materializing a flat intermediate.
//
// # Partition-memoization contract
//
// Partition(r, key, p) stores the shard list in r's size-keyed memo table
// under "shard:key:p". The contract:
//
//   - One build per (key, P) per stored row set. Renamed and cloned views
//     delegate memo lookups to the relation whose storage they share, so
//     all views of one base relation share one partition; Partition
//     re-serves a memoized partition under the caller's attribute names
//     through O(arity) copy-on-write renames.
//   - Inserts invalidate implicitly: memo entries record the relation size
//     they were built at, so the next Partition after growth rebuilds.
//   - Shards are read-only. They may be served concurrently to many
//     evaluations; nothing may insert into a shard.
//
// Exchange-built views (FromParts, exchangeParts) are NOT memoized: they
// partition operator outputs that live only inside one evaluation.
//
// Large builds run block-parallel (bucket counts per block, a prefix over
// the block×shard count matrix, then a race-free scatter into disjoint
// ranges), preserving the sequential build's row order exactly.
//
// # Skew
//
// Hash partitioning balances shards only as well as the key's value
// distribution: one dominant value (a Zipf hub) hashes every matching row
// into a single shard and serializes the join again. When a shard of an
// operator's probe side exceeds Options.SkewFraction of that side's rows,
// it is split into contiguous row blocks (relation.Slice views, no
// copying) that each join against the pointer-replicated, read-only
// co-shard; per-shard outputs concatenate the block results. Semijoins
// split only their left side — a surviving row may match anywhere in the
// right side, so the right side stays whole.
//
// Partitioning is statistics-light by design (janus-datalog's "greedy
// beats optimal" production lesson): the partition key is the shared join
// column with the most distinct values, P defaults to GOMAXPROCS, and
// there is no cost model beyond the reuse/broadcast/exchange ladder above.
//
// # Empty shards
//
// Sparse partitionings (P far above a key's distinct values) leave many
// shards empty, and empty shards pay nothing: Partition points empty
// buckets at one canonical empty relation instead of allocating columns,
// an Exchange of an empty stream returns a canonical empty view without a
// bucket pass, repartitioning skips zero-length source shards before
// bucketing, and the join/semijoin task loops skip shards where a side is
// empty (their outputs share one empty part).
//
// # Spill
//
// Options.Spill threads a memory governor (internal/spill) through every
// path that builds shards: memoized base partitions, repartitioned and
// assembled operator outputs all register their column bytes, and the
// governor parks the coldest unpinned shards in file-backed segments when
// its budget is exceeded. Operators Pin the views they fan out over for
// their duration, and exchanging a governed view streams one source shard
// at a time (pin, bucket, scatter, unpin) so repartitioning never needs
// the whole view resident. Reads of parked shards reload transparently;
// outputs are identical with or without a budget.
//
// # Partition versioning
//
// ExtendPartitions (delta.go) carries memoized partitions across epoch
// versions: when a frozen relation is extended by a committed batch, the
// delta rows are bucketed by the same ShardOf hash, shards the delta
// missed are carried over to the successor's memo by pointer (keeping
// their single governor registration), and only the touched shards are
// rebuilt and freshly governed. The successor thus starts with warm
// partitions at O(delta + touched shards), while the base's memo — still
// serving pinned readers of the old epoch — is left untouched until the
// epoch sweep reclaims it.
package shard
