package shard

// The streamed counterpart of Stream and the exchange-routed operators: a
// Piped carries per-shard column-batch pipelines (internal/batch) instead
// of materialized shards, and the Piped operators extend those pipelines
// stage by stage — scan, semijoin, join probe, projection — so an
// intermediate result's peak residency is one batch per stage per shard.
// The right-hand operands of joins and semijoins remain relations (they
// are probed via memoized hash indexes, which need the whole operand), so
// pipelines always flow on the left: exactly the shape of the executors,
// where the running intermediate meets one base binding after another.

import (
	"context"
	"fmt"

	"cqbound/internal/batch"
	"cqbound/internal/pool"
	"cqbound/internal/relation"
)

// streamBroadcastRows is the size bound for broadcasting in streamed joins:
// a pipeline whose partitioning is misaligned with the join key is NOT
// exchanged when the other side is at most this many rows — probing the
// small side whole per part costs about what a co-partitioned probe would,
// and the exchange's scatter copy over the (unknown-cardinality) pipeline
// is saved entirely. The materialized router compares against one shard of
// the big side; a pipeline's cardinality is unknown before it runs, so the
// streamed router uses an absolute bound of about four default batches.
const streamBroadcastRows = 4096

// Piped is the currency of streamed evaluation: per-shard batch pipelines
// plus the partition key they are keyed on (-1 when the single pipeline has
// no known partitioning). Multi-part pipeds are always keyed. A Piped is
// consumed by extending or draining it exactly once — pipelines are not
// rewindable; buffer through batch.Buffered or materialize to re-iterate.
type Piped struct {
	attrs []string
	key   int
	parts []batch.Iterator
}

// Attrs returns the schema every part's batches carry.
func (pd *Piped) Attrs() []string { return pd.attrs }

// Parts returns the number of per-shard pipelines.
func (pd *Piped) Parts() int { return len(pd.parts) }

// PipedOf opens a stream as pipelines: one scan per shard when the stream
// carries a partitioned view at the options' count (keeping its key), one
// flat scan otherwise. Scans are zero-copy and pin governed storage only
// across individual batch reads.
func PipedOf(st Stream, opts *Options) *Piped {
	size, bm := opts.batchSize(), opts.batchMetrics()
	if sh := st.Sharded(); sh != nil && sh.P() == opts.Count() && sh.P() > 1 {
		parts := make([]batch.Iterator, sh.P())
		for k := range parts {
			parts[k] = batch.Scan(sh.Shard(k), size, bm)
		}
		return &Piped{attrs: sh.Attrs(), key: sh.Key(), parts: parts}
	}
	return &Piped{attrs: st.Attrs(), key: -1, parts: []batch.Iterator{batch.Scan(st.Rel(), size, bm)}}
}

// tapIter counts rows flowing through a pipeline stage without touching
// them — the streamed form of the ReusedRows accounting: rows that reach a
// sharded probe already partitioned on the key never pass an exchange, so
// they are counted as they flow instead of when a partition is reused.
type tapIter struct {
	src batch.Iterator
	f   func(int)
}

func (t *tapIter) Attrs() []string { return t.src.Attrs() }

func (t *tapIter) Next(ctx context.Context) (*batch.Batch, error) {
	b, err := t.src.Next(ctx)
	if b != nil {
		t.f(b.N)
	}
	return b, err
}

// splitProbe is the streamed form of the materialized router's hot-shard
// block split, for skew on the probe side: when one shard of the probe
// relation holds more than the skew fraction of its total, the part's
// stream is buffered into governed chunks while its first block chain
// consumes it, the shard is sliced into row blocks of about frac·total
// rows, and every further block gets its own chain over a replay of the
// buffer — batch.Fan merges them, so a serialized probe against the hot
// shard becomes len(blocks) parallel probes. Only usable for stages that
// are stateless per row (the join probe); a projection's dedup set would
// leak duplicates across blocks.
func splitProbe(src batch.Iterator, rsh *relation.Relation, blocks int, attrs []string, chain func(batch.Iterator, *relation.Relation) batch.Iterator, opts *Options) batch.Iterator {
	buf := batch.NewBuffered(src, rsh.Name+"_skew", opts.batchSize(), opts.governTransient, opts.batchMetrics())
	mks := make([]func() batch.Iterator, 0, blocks)
	for i, b := range sliceBlocks(rsh, blocks) {
		b := b
		in := batch.Iterator(buf)
		if i > 0 {
			in = buf.Rewind()
		}
		mks = append(mks, func() batch.Iterator { return chain(in, b) })
	}
	return batch.Fan(mks, attrs)
}

// partitionSide partitions a probe-side relation for the streamed
// operators. Shards register with the governor either way; a transient
// operand's shards are additionally tracked in the evaluation scope, so a
// fresh intermediate's partitioning is discarded with the intermediate when
// the query finishes, while a base relation's memoized shards persist for
// reuse across evaluations. (Double-tracking a memoized shard is safe:
// buffer discard is idempotent.)
func partitionSide(r *relation.Relation, key, p int, transient bool, opts *Options) *Sharded {
	sh := partition(r, key, p, opts.spill())
	if transient && opts != nil && opts.Scope != nil && opts.spill() != nil {
		for k := 0; k < sh.P(); k++ {
			if b := sh.Shard(k).Buffer(); b != nil {
				opts.Scope.Track(b)
			}
		}
	}
	return sh
}

// probeChain builds one part's probe stage against its shard of the probe
// relation, splitting a hot shard into parallel block chains when the skew
// fraction says so. total is the probe relation's full size.
func probeChain(src batch.Iterator, rsh *relation.Relation, total int, attrs []string, chain func(batch.Iterator, *relation.Relation) batch.Iterator, opts *Options) batch.Iterator {
	if frac := opts.skewFraction(); frac > 0 {
		if blocks := hotBlocks(rsh.Size(), total, frac); blocks > 1 {
			noteSkew(opts, rsh.Name, blocks)
			return splitProbe(src, rsh, blocks, attrs, chain, opts)
		}
	}
	return chain(src, rsh)
}

// JoinPipedStream extends every pipeline of pd with a hash-join probe
// against next, the streamed NaturalJoinStream: attributes shared by name
// join, the output keeps all left columns (so pd's key survives unless the
// routing replaces it) plus next's non-join columns. Routing mirrors the
// materialized ladder — reuse an aligned partitioning (counting the rows
// that flow as reused), probe a small next whole per part, otherwise
// exchange the pipeline onto a shared column (batch.Exchange: incremental
// governor registration). Skew handling is two-sided: a hot shard of the
// partitioned next splits into row blocks probed by parallel chains, and a
// hot exchange output part grows a second probe chain via batch.Grow while
// the exchange still scatters. next is partitioned through its memoized
// Partition, so repeated evaluations share the build.
func JoinPipedStream(ctx context.Context, opts *Options, pd *Piped, next *relation.Relation, transient bool) (*Piped, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := opts.metrics()
	size, bm := opts.batchSize(), opts.batchMetrics()
	lCols, rCols := relation.SharedColsNames(pd.attrs, next.Attrs)
	if len(lCols) == 0 {
		// Cross product: every part joins the whole of next; the raw
		// all-left-then-all-right layout IS the output schema (nothing is
		// dropped), and pd's key survives at its position.
		attrs := append(append(make([]string, 0, len(pd.attrs)+next.Arity()), pd.attrs...), next.Attrs...)
		parts := make([]batch.Iterator, len(pd.parts))
		for k := range parts {
			parts[k] = batch.JoinProbe(pd.parts[k], next, nil, size, bm)
		}
		countOp(m, len(parts))
		return &Piped{attrs: attrs, key: pd.key, parts: parts}, nil
	}
	pairs := make([][2]int, len(lCols))
	for i := range lCols {
		pairs[i] = [2]int{lCols[i], rCols[i]}
	}
	attrs, keep := relation.NaturalJoinSchema(pd.attrs, next.Attrs, rCols)
	p := opts.Count()

	chain := func(src batch.Iterator, rShard *relation.Relation) batch.Iterator {
		return batch.Keep(batch.JoinProbe(src, rShard, pairs, size, bm), keep, attrs)
	}

	// Aligned: pd is already partitioned on a join column at count p, so
	// next's matching shards probe part for part; rows flow unexchanged.
	if pick := pipedAligned(pd, lCols, p); pick >= 0 {
		rSh := partitionSide(next, rCols[pick], p, transient, opts)
		parts := make([]batch.Iterator, p)
		for k := range parts {
			src := batch.Iterator(&tapIter{src: pd.parts[k], f: m.addReused})
			parts[k] = probeChain(src, rSh.Shard(k), next.Size(), attrs, chain, opts)
		}
		m.addSharded()
		// Left columns keep their positions through the join projection.
		return &Piped{attrs: attrs, key: lCols[pick], parts: parts}, nil
	}
	// Sharding off, or a flat pipeline meeting an input below MinRows:
	// probe next whole in the single part.
	if p == 1 || (len(pd.parts) == 1 && !opts.active(next.Size())) {
		it := chain(pd.parts[0], next)
		countOp(m, 1)
		return &Piped{attrs: attrs, key: -1, parts: []batch.Iterator{it}}, nil
	}
	// Misaligned multi-part pipeline: broadcast a small (or below-MinRows)
	// next against the existing parts instead of scattering the pipeline.
	// The parts stay partitioned on pd's (non-join) key, which survives.
	if len(pd.parts) > 1 && (next.Size() <= streamBroadcastRows || !opts.active(next.Size())) {
		parts := make([]batch.Iterator, len(pd.parts))
		for k := range parts {
			src := batch.Iterator(&tapIter{src: pd.parts[k], f: m.addReused})
			parts[k] = chain(src, next)
		}
		m.addSharded()
		m.addBroadcast()
		return &Piped{attrs: attrs, key: pd.key, parts: parts}, nil
	}
	// Exchange the pipeline onto the shared column where next has the most
	// distinct values (the balanced choice the materialized router makes;
	// the pipeline side has no statistics before it runs). Output shards
	// seal into governed chunks as they fill. Skew: a hot shard of next
	// splits into block chains up front; otherwise a part of the exchange
	// flagged hot mid-stream grows a second probe chain.
	pick := 0
	bestScore := -1
	for i := range rCols {
		if d := next.DistinctCount(rCols[i]); d > bestScore {
			pick, bestScore = i, d
		}
	}
	rSh := partitionSide(next, rCols[pick], p, transient, opts)
	frac := opts.skewFraction()
	ex := batch.NewExchange(pd.parts, pd.attrs, lCols[pick], p, size, frac, opts.governTransient, exchangeCount(opts, pd.attrs[lCols[pick]], p), bm)
	parts := make([]batch.Iterator, p)
	for k := range parts {
		k := k
		rsh := rSh.Shard(k)
		if blocks := hotBlocks(rsh.Size(), next.Size(), frac); frac > 0 && blocks > 1 {
			noteSkew(opts, rsh.Name, blocks)
			parts[k] = splitProbe(ex.Part(k), rsh, blocks, attrs, chain, opts)
			continue
		}
		if frac > 0 {
			mk := func() batch.Iterator { return chain(ex.Part(k), rsh) }
			parts[k] = batch.Grow(mk, attrs, func() bool { return ex.Hot(k) }, func() { noteSkew(opts, rsh.Name, 2) })
		} else {
			parts[k] = chain(ex.Part(k), rsh)
		}
	}
	m.addSharded()
	return &Piped{attrs: attrs, key: lCols[pick], parts: parts}, nil
}

// SemijoinPipedStream extends every pipeline with a semijoin filter against
// next, the streamed SemijoinStream. A filter never changes pd's schema, so
// the routing only decides where the probes happen: an aligned multi-part
// pipeline probes next's matching shards (counting its rows as reused), a
// misaligned one probes next whole per part (the index is memoized on next,
// so the broadcast builds it once), and a flat pipeline meeting an
// above-MinRows next is exchanged onto a shared column first so the filter
// — and every stage after it — runs partition-parallel. next empty with
// shared columns makes every part end without pulling its upstream.
func SemijoinPipedStream(ctx context.Context, opts *Options, pd *Piped, next *relation.Relation, transient bool) (*Piped, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := opts.metrics()
	size, bm := opts.batchSize(), opts.batchMetrics()
	lCols, rCols := relation.SharedColsNames(pd.attrs, next.Attrs)
	p := opts.Count()
	// Sharding off, no column to route on, or a flat pipeline meeting an
	// input below MinRows: filter the parts as they are.
	if len(lCols) == 0 || p == 1 || (len(pd.parts) == 1 && !opts.active(next.Size())) {
		parts := make([]batch.Iterator, len(pd.parts))
		for k := range parts {
			parts[k] = batch.Semijoin(pd.parts[k], next, lCols, rCols, bm)
		}
		countOp(m, len(parts))
		return &Piped{attrs: pd.attrs, key: pd.key, parts: parts}, nil
	}
	// Aligned: each part probes only next's matching shard.
	if pick := pipedAligned(pd, lCols, p); pick >= 0 {
		rSh := partitionSide(next, rCols[pick], p, transient, opts)
		parts := make([]batch.Iterator, p)
		for k := range parts {
			src := batch.Iterator(&tapIter{src: pd.parts[k], f: m.addReused})
			parts[k] = batch.Semijoin(src, rSh.Shard(k), lCols, rCols, bm)
		}
		m.addSharded()
		return &Piped{attrs: pd.attrs, key: pd.key, parts: parts}, nil
	}
	// Misaligned multi-part pipeline: probe next whole per part — the
	// filter keeps pd's partitioning, and next's memoized index is shared.
	if len(pd.parts) > 1 {
		parts := make([]batch.Iterator, len(pd.parts))
		for k := range parts {
			src := batch.Iterator(&tapIter{src: pd.parts[k], f: m.addReused})
			parts[k] = batch.Semijoin(src, next, lCols, rCols, bm)
		}
		m.addSharded()
		m.addBroadcast()
		return &Piped{attrs: pd.attrs, key: pd.key, parts: parts}, nil
	}
	// Flat pipeline, sharding on: exchange onto the shared column where
	// next has the most distinct values, then filter shard against shard —
	// the result stays partitioned for the stages downstream.
	pick := 0
	bestScore := -1
	for i := range rCols {
		if d := next.DistinctCount(rCols[i]); d > bestScore {
			pick, bestScore = i, d
		}
	}
	rSh := partitionSide(next, rCols[pick], p, transient, opts)
	ex := batch.NewExchange(pd.parts, pd.attrs, lCols[pick], p, size, 0, opts.governTransient, exchangeCount(opts, pd.attrs[lCols[pick]], p), bm)
	parts := make([]batch.Iterator, p)
	for k := range parts {
		parts[k] = batch.Semijoin(ex.Part(k), rSh.Shard(k), lCols, rCols, bm)
	}
	m.addSharded()
	return &Piped{attrs: pd.attrs, key: lCols[pick], parts: parts}, nil
}

// ProjectPiped extends the pipelines with the duplicate-eliminating
// projection onto idx, the streamed ProjectStream. A multi-part piped whose
// key survives projects part by part (duplicates agree on every kept column
// including the key, so they share a part); otherwise the pipeline is first
// exchanged onto the first kept column, which makes per-part dedup exact.
func ProjectPiped(ctx context.Context, opts *Options, pd *Piped, idx []int) (*Piped, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := opts.metrics()
	size, bm := opts.batchSize(), opts.batchMetrics()
	attrs := make([]string, len(idx))
	for i, c := range idx {
		if c < 0 || c >= len(pd.attrs) {
			return nil, fmt.Errorf("shard: projection column %d out of range for %v", c, pd.attrs)
		}
		attrs[i] = pd.attrs[c]
	}
	if len(pd.parts) == 1 {
		it := batch.Project(pd.parts[0], idx, attrs, size, bm)
		countOp(m, 1)
		return &Piped{attrs: attrs, key: -1, parts: []batch.Iterator{it}}, nil
	}
	if outKey := indexOfKept(idx, pd.key); outKey >= 0 {
		parts := make([]batch.Iterator, len(pd.parts))
		for k := range parts {
			parts[k] = batch.Project(pd.parts[k], idx, attrs, size, bm)
		}
		m.addSharded()
		return &Piped{attrs: attrs, key: outKey, parts: parts}, nil
	}
	// Key dropped: route rows by the first kept column so all duplicates of
	// a projected tuple meet in one part's dedup set. No Grow here — the
	// projection is stateful (its dedup set), so splitting one part across
	// two chains would let duplicates slip through.
	ex := batch.NewExchange(pd.parts, pd.attrs, idx[0], len(pd.parts), size, 0, opts.governTransient, exchangeCount(opts, pd.attrs[idx[0]], len(pd.parts)), bm)
	parts := make([]batch.Iterator, len(pd.parts))
	for k := range parts {
		parts[k] = batch.Project(ex.Part(k), idx, attrs, size, bm)
	}
	m.addSharded()
	return &Piped{attrs: attrs, key: 0, parts: parts}, nil
}

// MaterializePiped drains the pipelines into a Stream: a single-part piped
// becomes a flat relation, a multi-part piped one relation per shard (built
// in parallel) assembled as a partitioned view on the piped's key — the
// hand-off point back to the materialized operators. transient registers
// the built relations with the spill governor as intermediates of the
// current evaluation; final outputs pass false and stay unmanaged.
func MaterializePiped(ctx context.Context, opts *Options, pd *Piped, name string, transient bool) (Stream, error) {
	bm := opts.batchMetrics()
	var govern func(*relation.Relation)
	if transient {
		govern = opts.governTransient
	}
	if len(pd.parts) == 1 {
		r, err := batch.Materialize(ctx, pd.parts[0], name, govern, bm)
		if err != nil {
			return Stream{}, err
		}
		return StreamOf(r), nil
	}
	outs := make([]*relation.Relation, len(pd.parts))
	if err := pool.Run(ctx, 0, len(pd.parts), func(k int) error {
		r, err := batch.Materialize(ctx, pd.parts[k], name, govern, bm)
		if err == nil {
			outs[k] = r
		}
		return err
	}); err != nil {
		return Stream{}, err
	}
	return ShardedStream(FromParts(name, pd.attrs, pd.key, outs)), nil
}

// pipedAligned returns the index into cols of pd's partition key when pd is
// partitioned at count p on one of the join columns, or -1.
func pipedAligned(pd *Piped, cols []int, p int) int {
	if pd.key < 0 || len(pd.parts) != p {
		return -1
	}
	for i, c := range cols {
		if c == pd.key {
			return i
		}
	}
	return -1
}

// countOp counts a streamed operator as sharded or single-shard fallback by
// its part count, keeping ShardStats meaningful for streamed plans.
func countOp(m *Metrics, parts int) {
	if parts > 1 {
		m.addSharded()
	} else {
		m.addFallback()
	}
}
