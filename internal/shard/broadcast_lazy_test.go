package shard

import (
	"context"
	"math/rand"
	"testing"

	"cqbound/internal/relation"
)

// lazySmallView builds a FromParts view of s partitioned on col 0 whose
// flat concatenation has not been forced, plus the flat original for
// computing expected results.
func lazySmallView(t *testing.T, s *relation.Relation, p int) *Sharded {
	t.Helper()
	base := Partition(s, 0, p)
	parts := make([]*relation.Relation, p)
	for k := 0; k < p; k++ {
		parts[k] = base.Shard(k)
	}
	view := FromParts(s.Name, s.Attrs, 0, parts)
	if view.Materialized() {
		t.Fatal("fresh FromParts view already materialized")
	}
	return view
}

// TestBroadcastJoinKeepsSmallSideLazy pins the broadcast regression: a
// small side arriving as a lazily assembled FromParts view is probed part
// by part, never forced into a flat relation — sizing and probing must not
// trigger the Rel() concatenation the stream avoided.
func TestBroadcastJoinKeepsSmallSideLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	big := randomRel(rng, "B", []string{"a", "b"}, 400, 40)
	small := randomRel(rng, "S", []string{"b", "c"}, 20, 40)
	// big partitioned on a non-join column: misaligned, so the small side
	// (20 ≤ 400/4+1 rows) takes the broadcast path.
	l := ShardedStream(Partition(big, 0, 4))
	view := lazySmallView(t, small, 2)
	opts := &Options{MinRows: 0, Shards: 4, Metrics: &Metrics{}}
	got, err := NaturalJoinStream(context.Background(), opts, l, ShardedStream(view))
	if err != nil {
		t.Fatal(err)
	}
	want, err := relation.NaturalJoin(big, small)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got.Rel(), want) {
		t.Fatalf("broadcast join over lazy view: %d rows, want %d", got.Size(), want.Size())
	}
	if view.Materialized() {
		t.Fatal("broadcast join forced the lazy small side flat")
	}
	if opts.Metrics.Snapshot().BroadcastOps == 0 {
		t.Fatal("join did not take the broadcast path; the regression test proves nothing")
	}
}

// TestSemijoinStreamKeepsLazyRightLazy is the same pin for the semijoin's
// misaligned branch: the right side stays a lazy view, probed shard by
// shard via SemijoinOnParts.
func TestSemijoinStreamKeepsLazyRightLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	l := randomRel(rng, "L", []string{"a", "b"}, 400, 40)
	r := randomRel(rng, "S", []string{"b", "c"}, 60, 40)
	lSt := ShardedStream(Partition(l, 0, 4)) // key a, join col b: misaligned
	view := lazySmallView(t, r, 2)
	opts := &Options{MinRows: 0, Shards: 4, Metrics: &Metrics{}}
	got, err := SemijoinStream(context.Background(), opts, lSt, ShardedStream(view))
	if err != nil {
		t.Fatal(err)
	}
	lCols, rCols := relation.SharedColsNames(l.Attrs, r.Attrs)
	want, err := relation.SemijoinOn(l, r, lCols, rCols)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(got.Rel(), want) {
		t.Fatalf("semijoin over lazy view: %d rows, want %d", got.Size(), want.Size())
	}
	if view.Materialized() {
		t.Fatal("semijoin forced the lazy right side flat")
	}
}
