package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"cqbound/internal/relation"
	"cqbound/internal/spill"
)

func frozenRel(rng *rand.Rand, name string, n, universe int) *relation.Relation {
	r := randomRel(rng, name, []string{"A", "B"}, n, universe)
	r.Freeze()
	return r
}

func extendOf(t *testing.T, base *relation.Relation, rng *rand.Rand, add, universe int) *relation.Relation {
	t.Helper()
	m := base.NewDedup()
	var delta []relation.Tuple
	for len(delta) < add {
		tp := relation.Tuple{
			relation.V(fmt.Sprintf("u%d", rng.Intn(universe))),
			relation.V(fmt.Sprintf("u%d", rng.Intn(universe))),
		}
		if _, dup := m.Row(tp); dup {
			continue
		}
		m.Put(tp, int32(base.Size()+len(delta)))
		delta = append(delta, tp)
	}
	next, err := base.Extend(delta)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

func TestExtendPartitionsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, p := range []int{2, 3, 5, 16} {
		base := frozenRel(rng, "R", 200, 60)
		Partition(base, 0, p) // memoize the base partitions
		next := extendOf(t, base, rng, 37, 80)
		if got := ExtendPartitions(base, next, nil); got != 1 {
			t.Fatalf("P=%d: extended %d partition memos, want 1", p, got)
		}

		derived := Partition(next, 0, p) // served from the installed memo
		flat := relation.New("flat", "A", "B")
		next.Each(func(tp relation.Tuple) bool {
			flat.MustInsert(tp.Clone()...)
			return true
		})
		want := Partition(flat, 0, p)
		for k := 0; k < p; k++ {
			if !relation.Equal(derived.Shard(k), want.Shard(k)) {
				t.Fatalf("P=%d: shard %d differs from rebuild: %d vs %d rows",
					p, k, derived.Shard(k).Size(), want.Shard(k).Size())
			}
		}
		// Base partitions are untouched — epoch readers still scan them.
		baseView := Partition(base, 0, p)
		total := 0
		for k := 0; k < p; k++ {
			total += baseView.Shard(k).Size()
		}
		if total != base.Size() {
			t.Fatalf("P=%d: base partitions now hold %d rows, want %d", p, total, base.Size())
		}
	}
}

func TestExtendPartitionsReusesUntouchedShards(t *testing.T) {
	base := relation.New("R", "A", "B")
	// All rows carry one key value → exactly one shard is ever touched.
	for i := 0; i < 20; i++ {
		base.Add("hot", fmt.Sprintf("v%d", i))
	}
	base.Freeze()
	p := 8
	baseView := Partition(base, 0, p)
	next, err := base.Extend([]relation.Tuple{{relation.V("hot"), relation.V("fresh")}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ExtendPartitions(base, next, nil); got != 1 {
		t.Fatalf("extended %d memos, want 1", got)
	}
	derived := Partition(next, 0, p)
	hot := ShardOf(relation.V("hot"), p)
	reused := 0
	for k := 0; k < p; k++ {
		if k == hot {
			if derived.Shard(k) == baseView.Shard(k) {
				t.Fatal("touched shard was not replaced")
			}
			continue
		}
		if derived.Shard(k) == baseView.Shard(k) {
			reused++
		}
	}
	if reused != p-1 {
		t.Fatalf("reused %d untouched shards by pointer, want %d", reused, p-1)
	}
}

func TestExtendPartitionsGovernsFreshShards(t *testing.T) {
	g := spill.NewGovernor(1<<20, t.TempDir())
	defer g.Close()
	rng := rand.New(rand.NewSource(43))
	base := frozenRel(rng, "R", 150, 40)
	partition(base, 0, 4, g)
	before := g.Snapshot().RegisteredBuffers
	next := extendOf(t, base, rng, 30, 60)
	ExtendPartitions(base, next, g)
	after := g.Snapshot().RegisteredBuffers
	if after <= before {
		t.Fatalf("no fresh shard registered with the governor (%d → %d)", before, after)
	}
}
