package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cqbound/internal/relation"
)

// randomRel builds a relation with n rows over a value universe of the
// given size (set semantics dedups collisions).
func randomRel(rng *rand.Rand, name string, attrs []string, n, universe int) *relation.Relation {
	r := relation.New(name, attrs...)
	for i := 0; i < n; i++ {
		vals := make([]string, len(attrs))
		for j := range vals {
			vals[j] = fmt.Sprintf("u%d", rng.Intn(universe))
		}
		r.Add(vals...)
	}
	return r
}

// forceShard makes every operator partition regardless of input size.
func forceShard(p int) *Options { return &Options{MinRows: 0, Shards: p} }

func TestPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := randomRel(rng, "R", []string{"a", "b"}, 500, 40)
	for _, p := range []int{1, 2, 3, 7, 16} {
		sh := Partition(r, 0, p)
		if sh.P() != p && !(p == 1 && sh.P() == 1) {
			t.Fatalf("P() = %d, want %d", sh.P(), p)
		}
		total := 0
		union := relation.New("U", "a", "b")
		for k := 0; k < sh.P(); k++ {
			s := sh.Shard(k)
			total += s.Size()
			for i := 0; i < s.Size(); i++ {
				if got := ShardOf(s.At(i, 0), sh.P()); got != k {
					t.Fatalf("p=%d: row with key %v in shard %d, ShardOf says %d", p, s.At(i, 0), k, got)
				}
				if _, err := union.Insert(s.Row(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if total != r.Size() {
			t.Fatalf("p=%d: shards hold %d rows, base has %d (overlap or loss)", p, total, r.Size())
		}
		if !relation.Equal(union, r) {
			t.Fatalf("p=%d: union of shards differs from base", p)
		}
	}
}

func TestPartitionSingleShardIsBase(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(2)), "R", []string{"a", "b"}, 50, 10)
	sh := Partition(r, 1, 1)
	if sh.P() != 1 || sh.Shard(0) != r {
		t.Fatal("p=1 partition should be the base relation itself, uncopied")
	}
}

func TestPartitionMemoized(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(3)), "R", []string{"a", "b"}, 200, 20)
	s1 := Partition(r, 0, 4)
	s2 := Partition(r, 0, 4)
	for k := 0; k < 4; k++ {
		if s1.Shard(k) != s2.Shard(k) {
			t.Fatal("second partition rebuilt shards instead of reusing the memo")
		}
	}
	// A different key or P is a different partition.
	if s3 := Partition(r, 1, 4); s3.Shard(0) == s1.Shard(0) {
		t.Fatal("partitions on different keys shared a shard")
	}
}

func TestPartitionRenamedViewGetsOwnAttrs(t *testing.T) {
	r := randomRel(rand.New(rand.NewSource(4)), "R", []string{"a", "b"}, 100, 10)
	Partition(r, 0, 3) // memoize under r's names
	view, err := r.Rename("V", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	sh := Partition(view, 0, 3)
	for k := 0; k < sh.P(); k++ {
		s := sh.Shard(k)
		if s.Attrs[0] != "x" || s.Attrs[1] != "y" {
			t.Fatalf("shard %d attrs = %v, want the view's [x y]", k, s.Attrs)
		}
	}
	// Rows must still be the memoized ones (shared storage, not a rebuild).
	base := Partition(r, 0, 3)
	for k := 0; k < sh.P(); k++ {
		if !relation.Equal(sh.Shard(k), base.Shard(k)) {
			t.Fatalf("renamed view's shard %d differs from base shard", k)
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	ctx := context.Background()
	// Empty relation: every shard empty.
	empty := relation.New("E", "a", "b")
	sh := Partition(empty, 0, 4)
	for k := 0; k < sh.P(); k++ {
		if sh.Shard(k).Size() != 0 {
			t.Fatal("shard of empty relation not empty")
		}
	}
	out, err := sh.Select(ctx, func(relation.Tuple) bool { return true })
	if err != nil || out.Size() != 0 {
		t.Fatalf("select over empty shards: %v, %d rows", err, out.Size())
	}

	// All rows share one key value: one shard holds everything, the rest
	// are empty.
	skew := relation.New("S", "k", "v")
	for i := 0; i < 64; i++ {
		skew.Add("hot", fmt.Sprintf("v%d", i))
	}
	sh = Partition(skew, 0, 4)
	nonEmpty := 0
	for k := 0; k < sh.P(); k++ {
		if sh.Shard(k).Size() > 0 {
			nonEmpty++
			if sh.Shard(k).Size() != 64 {
				t.Fatalf("skewed shard has %d rows, want 64", sh.Shard(k).Size())
			}
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("single-valued key spread over %d shards", nonEmpty)
	}

	// More shards than distinct values: some shards must be empty, nothing
	// is lost.
	small := randomRel(rand.New(rand.NewSource(5)), "T", []string{"a", "b"}, 30, 3)
	sh = Partition(small, 0, 16)
	total := 0
	for k := 0; k < sh.P(); k++ {
		total += sh.Shard(k).Size()
	}
	if total != small.Size() {
		t.Fatalf("p>distinct: shards hold %d rows, want %d", total, small.Size())
	}
}

func TestShardedSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	r := randomRel(rng, "R", []string{"a", "b"}, 400, 30)
	pred := func(t relation.Tuple) bool { return ShardOf(t[1], 2) == 0 }
	want := r.Select(pred)
	got, err := Partition(r, 0, 5).Select(context.Background(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got) {
		t.Fatalf("sharded select = %d rows, unsharded = %d", got.Size(), want.Size())
	}
}

func TestCoPartitionedHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randomRel(rng, "R", []string{"a", "b"}, 300, 25)
	s := randomRel(rng, "S", []string{"c", "d"}, 350, 25)
	pairs := [][2]int{{1, 0}} // R.b = S.c
	want, err := relation.HashJoin(r, s, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 9} {
		got, err := HashJoin(context.Background(), Partition(r, 1, p), Partition(s, 0, p), pairs)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("p=%d: sharded join = %d rows, unsharded = %d", p, got.Size(), want.Size())
		}
	}
}

func TestHashJoinRejectsMisalignedPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := randomRel(rng, "R", []string{"a", "b"}, 50, 10)
	s := randomRel(rng, "S", []string{"c", "d"}, 50, 10)
	ctx := context.Background()
	// Different P.
	if _, err := HashJoin(ctx, Partition(r, 1, 2), Partition(s, 0, 3), [][2]int{{1, 0}}); err == nil {
		t.Fatal("join across different shard counts did not error")
	}
	// Partition keys not a join pair.
	if _, err := HashJoin(ctx, Partition(r, 0, 2), Partition(s, 1, 2), [][2]int{{1, 0}}); err == nil {
		t.Fatal("join with misaligned partition keys did not error")
	}
}

func TestShardedSemijoin(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := randomRel(rng, "R", []string{"a", "b"}, 400, 30)
	s := randomRel(rng, "S", []string{"b", "c"}, 100, 30) // shares "b"
	want, err := relation.Semijoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3, 8} {
		got, err := Semijoin(context.Background(), forceShard(p), r, s)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("p=%d: sharded semijoin = %d rows, unsharded = %d", p, got.Size(), want.Size())
		}
	}
}

func TestShardedNaturalJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := randomRel(rng, "R", []string{"a", "b"}, 300, 20)
	s := randomRel(rng, "S", []string{"b", "c"}, 250, 20)
	want, err := relation.NaturalJoin(r, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 5} {
		got, err := NaturalJoin(context.Background(), forceShard(p), r, s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Arity() != want.Arity() {
			t.Fatalf("p=%d: arity %d, want %d", p, got.Arity(), want.Arity())
		}
		for i, a := range want.Attrs {
			if got.Attrs[i] != a {
				t.Fatalf("p=%d: attrs %v, want %v", p, got.Attrs, want.Attrs)
			}
		}
		if !relation.Equal(want, got) {
			t.Fatalf("p=%d: sharded natural join = %d rows, unsharded = %d", p, got.Size(), want.Size())
		}
	}
}

func TestNaturalJoinFallsBackWithoutSharedColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := randomRel(rng, "R", []string{"a", "b"}, 20, 5)
	s := randomRel(rng, "S", []string{"c", "d"}, 20, 5)
	want, err := relation.NaturalJoin(r, s) // degenerates to a product
	if err != nil {
		t.Fatal(err)
	}
	got, err := NaturalJoin(context.Background(), forceShard(4), r, s)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(want, got) {
		t.Fatal("fallback product differs from relation.NaturalJoin")
	}
}

func TestShardedProjectIdx(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	r := randomRel(rng, "R", []string{"a", "b", "c"}, 500, 8)
	cases := [][]int{{0}, {1, 2}, {2, 0}, {0, 0, 1}} // incl. repeated positions
	for _, idx := range cases {
		want, err := r.ProjectIdx(idx...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProjectIdx(context.Background(), forceShard(4), r, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !relation.Equal(want, got) {
			t.Fatalf("idx=%v: sharded projection = %d rows, unsharded = %d", idx, got.Size(), want.Size())
		}
	}
}

func TestOptionsRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	r := randomRel(rng, "R", []string{"a", "b"}, 100, 10)
	s := randomRel(rng, "S", []string{"b", "c"}, 100, 10)
	ctx := context.Background()

	// nil options: identical to the relation-package operator.
	want, _ := relation.Semijoin(r, s)
	got, err := Semijoin(ctx, nil, r, s)
	if err != nil || !relation.Equal(want, got) {
		t.Fatalf("nil-options semijoin diverged: %v", err)
	}

	// Below the row threshold: also falls back (still must be correct).
	got, err = Semijoin(ctx, &Options{MinRows: 10_000, Shards: 4}, r, s)
	if err != nil || !relation.Equal(want, got) {
		t.Fatalf("below-threshold semijoin diverged: %v", err)
	}

	if (&Options{MinRows: 0, Shards: 4}).Count() != 4 {
		t.Fatal("Count ignored explicit shard count")
	}
	if o := (*Options)(nil); o.active(1_000_000) {
		t.Fatal("nil options reported active")
	}
}

func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	r := randomRel(rng, "R", []string{"a", "b"}, 200, 10)
	s := randomRel(rng, "S", []string{"b", "c"}, 200, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NaturalJoin(ctx, forceShard(4), r, s); err == nil {
		t.Fatal("canceled context did not abort the sharded join")
	}
	if _, err := Semijoin(ctx, forceShard(4), r, s); err == nil {
		t.Fatal("canceled context did not abort the sharded semijoin")
	}
}
