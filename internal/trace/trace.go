package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span in the execution tree.
type Kind string

// Span kinds, one per plan stage and operator class.
const (
	KindEvaluate Kind = "evaluate" // root span of one evaluation
	KindPlan     Kind = "plan"     // analysis + strategy choice (cache hit or miss)
	KindStage    Kind = "stage"    // executor phase: bindings, semijoin pass, join pass, ...
	KindScan     Kind = "scan"     // base-relation binding scan
	KindSemijoin Kind = "semijoin" // semijoin reducer pass over one edge
	KindJoin     Kind = "join"     // natural-join probe (one plan step or tree node)
	KindProject  Kind = "project"  // duplicate-eliminating projection
	KindExchange Kind = "exchange" // shard repartition (rows moved between partitions)
	KindSkew     Kind = "skew"     // hot-shard split event
	KindSink     Kind = "sink"     // pipeline drain into a materialized relation
)

// estUnset marks a span with no planner estimate; Render prints "est=?".
const estUnset = -1

// Span is one node of the execution tree. The creating goroutine owns the
// identity fields (Kind, Name) and the single-writer annotations (SetNote,
// SetEst, SetShards, AddSpill); row/batch counters are atomic because pool
// workers of one operator add to them concurrently. A nil *Span is inert.
type Span struct {
	kind Kind
	name string

	// Single-writer annotations (set by the creating executor goroutine
	// before the span is read by Finish/Render).
	note   string
	est    float64 // planner/paper estimate of output rows; estUnset if none
	shards int     // fan-out: partitions this operator ran over (0 = flat)

	evictions int64 // governed buffers parked to disk during this span
	reloads   int64 // governed buffers faulted back during this span

	start time.Time
	dur   atomic.Int64 // wall nanoseconds; 0 while still open

	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	batches atomic.Int64

	// open counts pipeline parts still running after Arm; the span ends
	// when the last part calls Done. armed distinguishes "never armed"
	// from "armed with zero parts".
	open  atomic.Int64
	armed atomic.Bool

	mu       sync.Mutex
	children []*Span
}

func newSpan(kind Kind, name string) *Span {
	return &Span{kind: kind, name: name, est: estUnset, start: time.Now()}
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// End closes the span, recording wall time since creation. Later calls
// (including the force-close in Finish) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if d <= 0 {
		d = 1
	}
	s.dur.CompareAndSwap(0, int64(d))
}

// Arm declares that the span's work is spread over n lazy pipeline parts;
// the span ends when all n have called Done. Arm(0) ends immediately.
func (s *Span) Arm(n int) {
	if s == nil {
		return
	}
	s.armed.Store(true)
	if s.open.Add(int64(n)) == 0 {
		s.End()
	}
}

// Done reports end-of-stream for one armed pipeline part.
func (s *Span) Done() {
	if s == nil {
		return
	}
	if s.open.Add(-1) == 0 && s.armed.Load() {
		s.End()
	}
}

// AddIn adds n input rows.
func (s *Span) AddIn(n int) {
	if s != nil {
		s.rowsIn.Add(int64(n))
	}
}

// AddOut adds n output rows.
func (s *Span) AddOut(n int) {
	if s != nil {
		s.rowsOut.Add(int64(n))
	}
}

// AddBatch records one pulled column batch of n rows (output side).
func (s *Span) AddBatch(n int) {
	if s != nil {
		s.batches.Add(1)
		s.rowsOut.Add(int64(n))
	}
}

// SetNote attaches a short free-form annotation (routing decision,
// cache disposition, bound formula).
func (s *Span) SetNote(note string) {
	if s != nil {
		s.note = note
	}
}

// SetEst records the planner's (or the paper bound's) estimate of this
// span's output size.
func (s *Span) SetEst(rows float64) {
	if s != nil {
		s.est = rows
	}
}

// SetShards records the partition fan-out the operator executed over.
func (s *Span) SetShards(p int) {
	if s != nil {
		s.shards = p
	}
}

// AddSpill records governor activity attributed to this span: buffers
// evicted to disk and buffers reloaded from it.
func (s *Span) AddSpill(evictions, reloads int64) {
	if s == nil {
		return
	}
	s.evictions += evictions
	s.reloads += reloads
}

// Accessors (all nil-safe, for render and tests).

// SpanKind returns the span's kind.
func (s *Span) SpanKind() Kind {
	if s == nil {
		return ""
	}
	return s.kind
}

// Name returns the span's display name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Note returns the free-form annotation, if any.
func (s *Span) Note() string {
	if s == nil {
		return ""
	}
	return s.note
}

// RowsIn returns the input-row count.
func (s *Span) RowsIn() int64 {
	if s == nil {
		return 0
	}
	return s.rowsIn.Load()
}

// RowsOut returns the output-row count.
func (s *Span) RowsOut() int64 {
	if s == nil {
		return 0
	}
	return s.rowsOut.Load()
}

// Batches returns how many column batches the span emitted.
func (s *Span) Batches() int64 {
	if s == nil {
		return 0
	}
	return s.batches.Load()
}

// Est returns the recorded estimate and whether one was set.
func (s *Span) Est() (float64, bool) {
	if s == nil || s.est == estUnset {
		return 0, false
	}
	return s.est, true
}

// Shards returns the recorded partition fan-out (0 = flat execution).
func (s *Span) Shards() int {
	if s == nil {
		return 0
	}
	return s.shards
}

// Spill returns governed evictions and reloads attributed to the span.
func (s *Span) Spill() (evictions, reloads int64) {
	if s == nil {
		return 0, 0
	}
	return s.evictions, s.reloads
}

// Duration returns the span's wall time (0 if still open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.dur.Load())
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// forceEnd closes s and every descendant still open (error paths,
// abandoned pipelines).
func (s *Span) forceEnd() {
	s.End()
	s.mu.Lock()
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.forceEnd()
	}
}

// Tracer collects the span tree of a single evaluation. A nil *Tracer is
// inert: Stage and Op return nil spans and Finish returns nil, so the
// execution stack instruments unconditionally.
type Tracer struct {
	root     *Span
	stage    atomic.Pointer[Span]
	query    string
	strategy string
	reqID    string
	start    time.Time
}

// NewTracer starts a trace for one evaluation of query (its display text).
func NewTracer(query string) *Tracer {
	t := &Tracer{query: query, start: time.Now()}
	t.root = newSpan(KindEvaluate, "evaluate")
	return t
}

// Root returns the evaluation's root span.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SetStrategy records the chosen plan strategy for the trace header.
func (t *Tracer) SetStrategy(s string) {
	if t != nil {
		t.strategy = s
	}
}

// SetRequestID records the serving-path correlation ID so the rendered
// trace and the slow-query record carry the same ID as the HTTP access
// log and /debug/requests.
func (t *Tracer) SetRequestID(id string) {
	if t != nil {
		t.reqID = id
	}
}

// Stage opens a new stage span under the root and makes it current:
// subsequent Op calls attach to it. Stages are sequential within an
// evaluation; the caller Ends the stage (Finish force-closes stragglers).
func (t *Tracer) Stage(kind Kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(kind, name)
	t.root.addChild(s)
	t.stage.Store(s)
	return s
}

// Op opens an operator span under the current stage (or the root when no
// stage is open). Safe to call from pool workers inside one stage.
func (t *Tracer) Op(kind Kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(kind, name)
	parent := t.stage.Load()
	if parent == nil {
		parent = t.root
	}
	parent.addChild(s)
	return s
}

// Finish freezes the trace: the root and any span left open are closed,
// and the immutable Trace is returned. The Tracer must not be used after.
func (t *Tracer) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.root.forceEnd()
	return &Trace{
		Query:     t.query,
		Strategy:  t.strategy,
		RequestID: t.reqID,
		Start:     t.start,
		Duration:  t.root.Duration(),
		Root:      t.root,
	}
}

// Counter is one named delta in a stats family.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// FamilyDelta is the per-query delta of one engine stats family
// (cache, shard, stream, spill, epoch), captured by snapshot/diff so
// concurrent queries don't contaminate each other.
type FamilyDelta struct {
	Family   string    `json:"family"`
	Counters []Counter `json:"counters"`
}

// Trace is a finished evaluation trace: the frozen span tree plus the
// per-query deltas of the engine's five stats families.
type Trace struct {
	Query     string        `json:"query"`
	Strategy  string        `json:"strategy"`
	RequestID string        `json:"request_id,omitempty"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Root      *Span         `json:"-"`
	Deltas    []FamilyDelta `json:"deltas,omitempty"`
}

// SpanCount returns the number of spans in the tree (root included).
func (t *Trace) SpanCount() int {
	if t == nil || t.Root == nil {
		return 0
	}
	var count func(*Span) int
	count = func(s *Span) int {
		n := 1
		for _, c := range s.Children() {
			n += count(c)
		}
		return n
	}
	return count(t.Root)
}

// Delta returns the named counter from the named family delta
// (0, false when absent) — a convenience for tests and sinks.
func (t *Trace) Delta(family, name string) (int64, bool) {
	if t == nil {
		return 0, false
	}
	for _, f := range t.Deltas {
		if f.Family != family {
			continue
		}
		for _, c := range f.Counters {
			if c.Name == name {
				return c.Value, true
			}
		}
	}
	return 0, false
}
