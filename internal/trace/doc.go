// Package trace is the per-evaluation observability layer of the engine:
// one Tracer per traced evaluation collects a tree of Spans — the root
// "evaluate" span, one stage span per executor phase (plan, bindings,
// semijoin passes, join steps, head projection), and operator spans for
// the work inside a stage (scans, semijoin and join probes, projections,
// exchanges, skew splits, sinks) — each carrying rows in/out, batches
// pulled, the planner's estimated intermediate size next to the actual
// one, shard fan-out, spill/reload events, and wall time.
//
// The contract with the execution stack:
//
//   - A nil *Tracer (and every span it hands out, which is a nil *Span)
//     is inert: all methods are no-ops, so call sites instrument
//     unconditionally and untraced evaluation pays only nil checks.
//   - Stages are sequential within one evaluation: Tracer.Stage sets the
//     current stage, and Tracer.Op attaches an operator span to whatever
//     stage is current. Operators inside one stage may run concurrently
//     (pool workers add rows through atomic counters); stages themselves
//     must not.
//   - Spans of synchronous operators are closed by their creator (End).
//     Spans of lazy pipeline stages are armed with their part count
//     (Arm) and close when every part reports end-of-stream (Done);
//     Finish force-closes whatever an error left open, so a Trace never
//     contains a span without a duration.
//   - Durations of pipeline spans overlap by construction — a pull-based
//     stage runs concurrently with every stage downstream of it — so the
//     tree's times do not sum to the root's wall clock.
//
// Finish freezes the tree into a Trace, which renders as an EXPLAIN
// ANALYZE text (Render) and carries the per-query deltas of the engine's
// five counter families (cache, shard, stream, spill, epoch), captured by
// the engine's snapshot/diff mechanism so concurrent queries do not
// contaminate each other. Sink receives finished traces; SlowQueryLog is
// the structured slow-query log implementation behind the engine's
// WithSlowQueryThreshold option.
package trace
