package trace

import (
	"fmt"
	"strings"
	"time"
)

// Render formats the trace as an EXPLAIN ANALYZE text: a deterministic
// "strategy:" header line, the span tree with estimated-vs-actual row
// counts, and the per-query stats-family deltas. Row counts, fan-out and
// wall times vary run to run; only the first line is stable output.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", t.Strategy)
	if t.RequestID != "" {
		fmt.Fprintf(&b, "request: %s\n", t.RequestID)
	}
	if t.Query != "" {
		fmt.Fprintf(&b, "query: %s\n", t.Query)
	}
	fmt.Fprintf(&b, "wall %s · %d spans · %d rows out\n",
		fmtDur(t.Duration), t.SpanCount(), t.Root.RowsOut())
	if t.Root != nil {
		renderSpan(&b, t.Root, "", "")
	}
	if len(t.Deltas) > 0 {
		b.WriteString("deltas\n")
		for _, f := range t.Deltas {
			fmt.Fprintf(&b, "  %-7s", f.Family)
			for _, c := range f.Counters {
				fmt.Fprintf(&b, " %s=+%d", c.Name, c.Value)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// String implements fmt.Stringer via Render.
func (t *Trace) String() string { return t.Render() }

func renderSpan(b *strings.Builder, s *Span, prefix, childPrefix string) {
	b.WriteString(prefix)
	b.WriteString(s.describe())
	b.WriteByte('\n')
	kids := s.Children()
	for i, c := range kids {
		if i == len(kids)-1 {
			renderSpan(b, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			renderSpan(b, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// describe renders one span line: name, kind, rows in→out next to the
// estimate, fan-out, batches, spill events, note, wall time.
func (s *Span) describe() string {
	var b strings.Builder
	b.WriteString(s.name)
	fmt.Fprintf(&b, " [%s]", s.kind)
	in, out := s.RowsIn(), s.RowsOut()
	switch {
	case in > 0 && out > 0:
		fmt.Fprintf(&b, " rows %d→%d", in, out)
	case out > 0:
		fmt.Fprintf(&b, " rows=%d", out)
	case in > 0:
		fmt.Fprintf(&b, " rows %d→0", in)
	}
	if est, ok := s.Est(); ok {
		fmt.Fprintf(&b, " est=%s", fmtEst(est))
	}
	if p := s.Shards(); p > 1 {
		fmt.Fprintf(&b, " p=%d", p)
	}
	if n := s.Batches(); n > 0 {
		fmt.Fprintf(&b, " batches=%d", n)
	}
	if ev, rl := s.Spill(); ev > 0 || rl > 0 {
		fmt.Fprintf(&b, " spill(evict=%d reload=%d)", ev, rl)
	}
	if s.note != "" {
		fmt.Fprintf(&b, " (%s)", s.note)
	}
	fmt.Fprintf(&b, " %s", fmtDur(s.Duration()))
	return b.String()
}

func fmtEst(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// fmtDur trims time.Duration noise: microsecond precision below a
// second, millisecond above.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "0s"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
