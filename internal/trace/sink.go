package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Sink receives finished traces from the engine. Emit is called
// synchronously after each traced evaluation (concurrent evaluations call
// it concurrently — implementations must be safe for that) with an
// immutable Trace; implementations must not retain and mutate it.
type Sink interface {
	Emit(*Trace)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(*Trace)

// Emit implements Sink.
func (f SinkFunc) Emit(t *Trace) { f(t) }

// SlowQueryLog is a Sink that writes one structured JSON line per trace
// whose wall time meets or exceeds a threshold — the implementation
// behind the engine's WithSlowQueryThreshold option.
type SlowQueryLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

// NewSlowQueryLog logs traces at least threshold long to w as JSON lines.
// A zero threshold logs every trace.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return &SlowQueryLog{w: w, threshold: threshold}
}

// slowQueryRecord is the JSON-lines schema of the slow-query log.
type slowQueryRecord struct {
	Time       time.Time        `json:"time"`
	RequestID  string           `json:"request_id,omitempty"`
	Query      string           `json:"query"`
	Strategy   string           `json:"strategy"`
	DurationMS float64          `json:"duration_ms"`
	Threshold  float64          `json:"threshold_ms"`
	Spans      int              `json:"spans"`
	RowsOut    int64            `json:"rows_out"`
	PeakStage  string           `json:"peak_stage,omitempty"`
	Deltas     map[string]int64 `json:"deltas,omitempty"`
}

// Emit implements Sink: traces shorter than the threshold are dropped,
// the rest serialize as one JSON line (query, strategy, duration, span
// count, output rows, the slowest stage, and all nonzero stats deltas as
// "family.counter" keys).
func (l *SlowQueryLog) Emit(t *Trace) {
	if t == nil || t.Duration < l.threshold {
		return
	}
	rec := slowQueryRecord{
		Time:       t.Start,
		RequestID:  t.RequestID,
		Query:      t.Query,
		Strategy:   t.Strategy,
		DurationMS: float64(t.Duration) / float64(time.Millisecond),
		Threshold:  float64(l.threshold) / float64(time.Millisecond),
		Spans:      t.SpanCount(),
		RowsOut:    t.Root.RowsOut(),
		PeakStage:  slowestStage(t.Root),
	}
	for _, f := range t.Deltas {
		for _, c := range f.Counters {
			if c.Value == 0 {
				continue
			}
			if rec.Deltas == nil {
				rec.Deltas = make(map[string]int64)
			}
			rec.Deltas[f.Family+"."+c.Name] = c.Value
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}

// slowestStage names the direct child of the root with the longest wall
// time — the first place to look in a slow-query record.
func slowestStage(root *Span) string {
	var name string
	var max time.Duration
	for _, c := range root.Children() {
		if d := c.Duration(); d > max {
			max, name = d, c.Name()
		}
	}
	return name
}
