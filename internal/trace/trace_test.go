package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if tr.Root() != nil || tr.Stage(KindStage, "s") != nil || tr.Op(KindJoin, "j") != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	if tr.Finish() != nil {
		t.Fatal("nil tracer Finish must return nil")
	}
	tr.SetStrategy("x") // must not panic
	var sp *Span
	sp.End()
	sp.Arm(3)
	sp.Done()
	sp.AddIn(1)
	sp.AddOut(2)
	sp.AddBatch(3)
	sp.SetNote("n")
	sp.SetEst(1)
	sp.SetShards(4)
	sp.AddSpill(1, 1)
	if sp.RowsIn() != 0 || sp.RowsOut() != 0 || sp.Batches() != 0 || sp.Duration() != 0 {
		t.Fatal("nil span accessors must read zero")
	}
	if _, ok := sp.Est(); ok {
		t.Fatal("nil span must report no estimate")
	}
	var tc *Trace
	if tc.Render() != "" || tc.SpanCount() != 0 {
		t.Fatal("nil trace must render empty")
	}
}

func TestSpanTreeAndCounters(t *testing.T) {
	tr := NewTracer("Q(X) <- R(X).")
	tr.SetStrategy("yannakakis")
	st := tr.Stage(KindStage, "bindings")
	op := tr.Op(KindScan, "scan R")
	op.AddOut(10)
	op.End()
	st.End()
	st2 := tr.Stage(KindStage, "join pass")
	j := tr.Op(KindJoin, "⋈ R")
	j.AddIn(10)
	j.AddOut(5)
	j.SetEst(7.5)
	j.SetShards(4)
	j.AddSpill(2, 1)
	j.End()
	st2.End()
	tr.Root().AddOut(5)
	tc := tr.Finish()
	if tc.Strategy != "yannakakis" || tc.Query != "Q(X) <- R(X)." {
		t.Fatalf("trace header = %q/%q", tc.Strategy, tc.Query)
	}
	if got := tc.SpanCount(); got != 5 {
		t.Fatalf("SpanCount = %d, want 5 (root + 2 stages + 2 ops)", got)
	}
	kids := tc.Root.Children()
	if len(kids) != 2 || kids[0].Name() != "bindings" || kids[1].Name() != "join pass" {
		t.Fatalf("stage children = %v", kids)
	}
	if ops := kids[1].Children(); len(ops) != 1 || ops[0].RowsIn() != 10 || ops[0].RowsOut() != 5 {
		t.Fatalf("join op children wrong: %+v", ops)
	}
	if est, ok := kids[1].Children()[0].Est(); !ok || est != 7.5 {
		t.Fatalf("est = %v/%v", est, ok)
	}
	if ev, rl := kids[1].Children()[0].Spill(); ev != 2 || rl != 1 {
		t.Fatalf("spill = %d/%d", ev, rl)
	}
	if tc.Root.Duration() <= 0 {
		t.Fatal("finished root must have positive duration")
	}
}

func TestArmDoneClosesAtLastPart(t *testing.T) {
	tr := NewTracer("q")
	sp := tr.Op(KindJoin, "piped")
	sp.Arm(3)
	sp.Done()
	sp.Done()
	if sp.Duration() != 0 {
		t.Fatal("span must stay open until the last armed part is done")
	}
	sp.Done()
	if sp.Duration() <= 0 {
		t.Fatal("span must close at the last Done")
	}
	d := sp.Duration()
	sp.Done() // extra Done must not reopen or change the duration
	if sp.Duration() != d {
		t.Fatal("extra Done changed the duration")
	}
}

func TestFinishForceClosesOpenSpans(t *testing.T) {
	tr := NewTracer("q")
	st := tr.Stage(KindStage, "pipeline")
	op := tr.Op(KindJoin, "abandoned")
	op.Arm(2)
	op.Done() // one part never drains
	tc := tr.Finish()
	if st.Duration() <= 0 || op.Duration() <= 0 {
		t.Fatal("Finish must force-close open spans")
	}
	if tc.Duration <= 0 {
		t.Fatal("trace duration missing")
	}
}

func TestConcurrentOpsUnderOneStage(t *testing.T) {
	tr := NewTracer("q")
	tr.Stage(KindStage, "parallel stage")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := tr.Op(KindSemijoin, "worker")
			sp.AddIn(1)
			sp.AddOut(1)
			sp.End()
		}()
	}
	wg.Wait()
	tc := tr.Finish()
	if got := tc.SpanCount(); got != 34 {
		t.Fatalf("SpanCount = %d, want 34", got)
	}
}

func TestRenderShowsEstimatesAndDeltas(t *testing.T) {
	tr := NewTracer("Q(X) <- R(X).")
	tr.SetStrategy("project-early")
	j := tr.Op(KindJoin, "⋈ R")
	j.AddIn(100)
	j.AddOut(40)
	j.SetEst(62.5)
	j.End()
	tc := tr.Finish()
	tc.Deltas = []FamilyDelta{{Family: "cache", Counters: []Counter{{Name: "hits", Value: 1}}}}
	out := tc.Render()
	if !strings.HasPrefix(out, "strategy: project-early\n") {
		t.Fatalf("first line not deterministic: %q", out)
	}
	for _, want := range []string{"rows 100→40", "est=62.5", "deltas", "cache   hits=+1", "[join]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if v, ok := tc.Delta("cache", "hits"); !ok || v != 1 {
		t.Fatalf("Delta lookup = %d/%v", v, ok)
	}
	if _, ok := tc.Delta("cache", "nope"); ok {
		t.Fatal("Delta must miss unknown counters")
	}
}

func TestSlowQueryLogThresholdAndSchema(t *testing.T) {
	mk := func(d time.Duration) *Trace {
		tr := NewTracer("Q(X) <- R(X).")
		tr.SetStrategy("yannakakis")
		st := tr.Stage(KindStage, "join pass")
		time.Sleep(d)
		st.End()
		tc := tr.Finish()
		tc.Deltas = []FamilyDelta{
			{Family: "stream", Counters: []Counter{{Name: "batches", Value: 3}, {Name: "rows_streamed", Value: 0}}},
		}
		return tc
	}
	var buf bytes.Buffer
	log := NewSlowQueryLog(&buf, 50*time.Millisecond)
	log.Emit(mk(0))
	if buf.Len() != 0 {
		t.Fatalf("fast query must be dropped, got %q", buf.String())
	}
	log.Emit(mk(60 * time.Millisecond))
	if buf.Len() == 0 {
		t.Fatal("slow query must be logged")
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if rec["query"] != "Q(X) <- R(X)." || rec["strategy"] != "yannakakis" {
		t.Fatalf("record = %v", rec)
	}
	if rec["peak_stage"] != "join pass" {
		t.Fatalf("peak_stage = %v", rec["peak_stage"])
	}
	deltas := rec["deltas"].(map[string]any)
	if deltas["stream.batches"] != float64(3) {
		t.Fatalf("deltas = %v", deltas)
	}
	if _, ok := deltas["stream.rows_streamed"]; ok {
		t.Fatal("zero deltas must be omitted from the log line")
	}

	// Zero threshold logs everything; SinkFunc adapts.
	buf.Reset()
	all := NewSlowQueryLog(&buf, 0)
	all.Emit(mk(0))
	if buf.Len() == 0 {
		t.Fatal("zero threshold must log every trace")
	}
	var n int
	SinkFunc(func(*Trace) { n++ }).Emit(mk(0))
	if n != 1 {
		t.Fatal("SinkFunc must forward Emit")
	}
}
