package graph

import "testing"

func TestBasicOps(t *testing.T) {
	g := New()
	a := g.EnsureVertex("a")
	b := g.EnsureVertex("b")
	if a2 := g.EnsureVertex("a"); a2 != a {
		t.Fatal("EnsureVertex created duplicate")
	}
	g.AddEdge(a, b)
	g.AddEdge(a, a) // self-loop ignored
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("edge not symmetric")
	}
	if !g.HasEdgeLabels("a", "b") || g.HasEdgeLabels("a", "zz") {
		t.Fatal("HasEdgeLabels wrong")
	}
	if g.Degree(a) != 1 {
		t.Fatalf("Degree = %d", g.Degree(a))
	}
}

func TestGenerators(t *testing.T) {
	if p := Path(5); p.N() != 5 || p.M() != 4 {
		t.Fatalf("Path(5): N=%d M=%d", p.N(), p.M())
	}
	if c := Cycle(5); c.N() != 5 || c.M() != 5 {
		t.Fatalf("Cycle(5): N=%d M=%d", c.N(), c.M())
	}
	if k := Complete(5); k.M() != 10 {
		t.Fatalf("K5: M=%d", k.M())
	}
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("Grid(3,4): N=%d M=%d", g.N(), g.M())
	}
}

func TestContainsGrid(t *testing.T) {
	g := Grid(3, 4)
	if !g.ContainsGrid(3, 4, GridLabel) {
		t.Fatal("grid does not contain itself")
	}
	if !g.ContainsGrid(2, 3, GridLabel) {
		t.Fatal("grid should contain its top-left subgrid")
	}
	if g.ContainsGrid(4, 4, GridLabel) {
		t.Fatal("3x4 grid cannot contain a 4x4 grid at the same labels")
	}
}

func TestComponents(t *testing.T) {
	g := New()
	g.AddEdgeLabels("a", "b")
	g.EnsureVertex("c")
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
}

func TestDegeneracy(t *testing.T) {
	if d := Complete(5).Degeneracy(); d != 4 {
		t.Fatalf("K5 degeneracy = %d, want 4", d)
	}
	if d := Cycle(6).Degeneracy(); d != 2 {
		t.Fatalf("C6 degeneracy = %d, want 2", d)
	}
	if d := Path(6).Degeneracy(); d != 1 {
		t.Fatalf("P6 degeneracy = %d, want 1", d)
	}
	if d := Grid(4, 4).Degeneracy(); d != 2 {
		t.Fatalf("grid degeneracy = %d, want 2", d)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(4)
	sub := g.InducedSubgraph([]int{0, 1, 2})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced: N=%d M=%d", sub.N(), sub.M())
	}
	if !sub.IsClique([]int{0, 1, 2}) {
		t.Fatal("induced K3 not a clique")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Path(3)
	h := g.Clone()
	h.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("Clone shares adjacency")
	}
}

func TestEdgesSorted(t *testing.T) {
	g := Cycle(4)
	es := g.Edges()
	if len(es) != 4 {
		t.Fatalf("Edges = %v", es)
	}
	for i := 1; i < len(es); i++ {
		if es[i-1][0] > es[i][0] || (es[i-1][0] == es[i][0] && es[i-1][1] >= es[i][1]) {
			t.Fatalf("Edges not sorted: %v", es)
		}
	}
}

func TestIsClique(t *testing.T) {
	g := Complete(4)
	if !g.IsClique([]int{0, 1, 2, 3}) {
		t.Fatal("K4 should be a clique")
	}
	p := Path(3)
	if p.IsClique([]int{0, 1, 2}) {
		t.Fatal("path is not a clique")
	}
}
