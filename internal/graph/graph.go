// Package graph provides undirected simple graphs with labeled vertices,
// the generators used by the paper's constructions (grids, cliques, the
// Figure 1 gadget's lattice), and the small algorithms the treewidth
// machinery builds on.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph. Vertices are dense integers with
// optional string labels (labels are unique when used).
type Graph struct {
	labels  []string
	byLabel map[string]int
	adj     []map[int]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byLabel: make(map[string]int)}
}

// AddVertex adds an unlabeled vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.labels = append(g.labels, "")
	g.adj = append(g.adj, make(map[int]bool))
	return len(g.labels) - 1
}

// EnsureVertex returns the vertex with the given label, creating it if
// needed.
func (g *Graph) EnsureVertex(label string) int {
	if v, ok := g.byLabel[label]; ok {
		return v
	}
	v := g.AddVertex()
	g.labels[v] = label
	g.byLabel[label] = v
	return v
}

// VertexByLabel returns the vertex with the given label.
func (g *Graph) VertexByLabel(label string) (int, bool) {
	v, ok := g.byLabel[label]
	return v, ok
}

// Label returns the label of vertex v (may be empty).
func (g *Graph) Label(v int) string { return g.labels[v] }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// AddEdge adds the undirected edge {u, v}; self-loops are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// AddEdgeLabels adds an edge between labeled vertices, creating them as
// needed.
func (g *Graph) AddEdgeLabels(a, b string) {
	g.AddEdge(g.EnsureVertex(a), g.EnsureVertex(b))
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// HasEdgeLabels reports whether an edge joins the two labels.
func (g *Graph) HasEdgeLabels(a, b string) bool {
	u, ok := g.byLabel[a]
	if !ok {
		return false
	}
	v, ok := g.byLabel[b]
	if !ok {
		return false
	}
	return g.HasEdge(u, v)
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New()
	out.labels = append([]string(nil), g.labels...)
	for l, v := range g.byLabel {
		out.byLabel[l] = v
	}
	out.adj = make([]map[int]bool, len(g.adj))
	for v, nb := range g.adj {
		cp := make(map[int]bool, len(nb))
		for u := range nb {
			cp[u] = true
		}
		out.adj[v] = cp
	}
	return out
}

// Edges returns all edges as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// InducedSubgraph returns the subgraph induced by keep, with vertices
// renumbered densely; labels are preserved.
func (g *Graph) InducedSubgraph(keep []int) *Graph {
	out := New()
	idx := make(map[int]int, len(keep))
	for _, v := range keep {
		nv := out.AddVertex()
		if g.labels[v] != "" {
			out.labels[nv] = g.labels[v]
			out.byLabel[g.labels[v]] = nv
		}
		idx[v] = nv
	}
	for _, v := range keep {
		for u := range g.adj[v] {
			if nu, ok := idx[u]; ok && u > v {
				out.AddEdge(idx[v], nu)
			}
		}
	}
	return out
}

// Components returns the connected components as vertex lists.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Degeneracy returns the graph degeneracy (max over subgraphs of the minimum
// degree), a classical treewidth lower... upper-bound companion: degeneracy
// ≤ treewidth. Computed by repeatedly removing a minimum-degree vertex.
func (g *Graph) Degeneracy() int {
	h := g.Clone()
	alive := make(map[int]bool)
	for v := 0; v < h.N(); v++ {
		alive[v] = true
	}
	best := 0
	for len(alive) > 0 {
		minV, minD := -1, 1<<30
		for v := range alive {
			d := 0
			for u := range h.adj[v] {
				if alive[u] {
					d++
				}
			}
			if d < minD {
				minV, minD = v, d
			}
		}
		if minD > best {
			best = minD
		}
		delete(alive, minV)
	}
	return best
}

// IsClique reports whether the vertices are pairwise adjacent.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// Path returns the path graph on n vertices labeled "p0".."p(n-1)".
func Path(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.EnsureVertex(fmt.Sprintf("p%d", i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle on n vertices.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(n-1, 0)
	}
	return g
}

// Complete returns the clique K_n.
func Complete(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.EnsureVertex(fmt.Sprintf("k%d", i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// GridLabel is the label of grid vertex (i, j), 1-based.
func GridLabel(i, j int) string { return fmt.Sprintf("v%d_%d", i, j) }

// Grid returns the rows × cols rectangular lattice with vertices labeled by
// GridLabel (1-based coordinates). Its treewidth is min(rows, cols) for
// rows+cols ≥ 3 (Fact 5.1).
func Grid(rows, cols int) *Graph {
	g := New()
	for i := 1; i <= rows; i++ {
		for j := 1; j <= cols; j++ {
			g.EnsureVertex(GridLabel(i, j))
		}
	}
	for i := 1; i <= rows; i++ {
		for j := 1; j <= cols; j++ {
			if j < cols {
				g.AddEdgeLabels(GridLabel(i, j), GridLabel(i, j+1))
			}
			if i < rows {
				g.AddEdgeLabels(GridLabel(i, j), GridLabel(i+1, j))
			}
		}
	}
	return g
}

// ContainsGrid reports whether the graph contains all edges of a rows × cols
// grid whose (i, j) vertex carries label(i, j) — i.e. the labeled grid is a
// subgraph. Missing vertices count as absent edges.
func (g *Graph) ContainsGrid(rows, cols int, label func(i, j int) string) bool {
	for i := 1; i <= rows; i++ {
		for j := 1; j <= cols; j++ {
			if j < cols && !g.HasEdgeLabels(label(i, j), label(i, j+1)) {
				return false
			}
			if i < rows && !g.HasEdgeLabels(label(i, j), label(i+1, j)) {
				return false
			}
		}
	}
	return true
}
