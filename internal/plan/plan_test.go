package plan

import (
	"context"
	"math/rand"
	"testing"

	"cqbound/internal/core"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/datagen"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
)

func TestChooseStrategyByStructure(t *testing.T) {
	cases := []struct {
		name string
		text string
		want Strategy
	}{
		{"star", "Q(X,Y,Z,W) <- F(X,Y), F(X,Z), F(X,W).", StrategyYannakakis},
		{"path", "Q(A,D) <- R(A,B), S(B,C), T(C,D).", StrategyYannakakis},
		{"single atom", "Q(X,Y) <- R(X,Y).", StrategyYannakakis},
		{"triangle", "Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z).", StrategyProjectEarly},
		{"keyed 4-cycle", "Q(A,B,C,D) <- F(A,B), G(B,C), H(C,D), K(D,A).\nkey F[1]. key G[1]. key H[1]. key K[1].", StrategyProjectEarly},
		{"4-cycle", "Q(A,B,C,D) <- F(A,B), F(B,C), F(C,D), F(D,A).", StrategyGenericJoin},
		{"cyclic with compound FDs", "Q(X,Y,Z) <- R(X,Y,U), S(Y,Z,U), T(Z,X,U).\nfd R[1],R[2] -> R[3].", StrategyGenericJoin},
	}
	for _, c := range cases {
		p, err := Choose(cq.MustParse(c.text))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Strategy != c.want {
			t.Errorf("%s: strategy = %v, want %v\nrationale: %s", c.name, p.Strategy, c.want, p.Rationale)
		}
		if p.Rationale == "" {
			t.Errorf("%s: empty rationale", c.name)
		}
	}
}

func TestChoosePlanFacts(t *testing.T) {
	// The triangle plan must carry its structural justification.
	p, err := Choose(cq.MustParse("Q(X,Y,Z) <- E(X,Y), E(Y,Z), E(X,Z)."))
	if err != nil {
		t.Fatal(err)
	}
	if p.Acyclic {
		t.Error("triangle reported acyclic")
	}
	if p.ColorNumber == nil || p.ColorNumber.RatString() != "3/2" {
		t.Errorf("triangle C = %v, want 3/2", p.ColorNumber)
	}
	if p.RhoStar == nil || p.RhoStar.RatString() != "3/2" {
		t.Errorf("triangle rho* = %v, want 3/2", p.RhoStar)
	}
	// Compound dependencies must not trigger the entropy LP: the plan keeps
	// a nil color number.
	p, err = Choose(cq.MustParse("Q(X,Y,Z) <- R(X,Y,U), S(Y,Z,U), T(Z,X,U).\nfd R[1],R[2] -> R[3]."))
	if err != nil {
		t.Fatal(err)
	}
	if p.ColorNumber != nil {
		t.Errorf("compound-FD plan priced the query: C = %v", p.ColorNumber)
	}
	if p.Class != core.CompoundFDs {
		t.Errorf("class = %v, want compound", p.Class)
	}
}

func TestOrderAtomsMostSelectiveFirst(t *testing.T) {
	// R is huge, S is tiny: the greedy order must start with S and then
	// join R through the shared variable rather than in body order.
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z), T(Z,W).")
	db := database.New()
	r := relation.New("R", "a", "b")
	for i := 0; i < 50; i++ {
		r.Add(string(rune('a'+i%26)), string(rune('A'+i%26)))
	}
	s := relation.New("S", "a", "b")
	s.Add("A", "z")
	tt := relation.New("T", "a", "b")
	tt.Add("z", "w")
	tt.Add("z", "v")
	db.MustAdd(r)
	db.MustAdd(s)
	db.MustAdd(tt)

	order := OrderAtoms(q, db)
	if len(order) != 3 || order[0] != 1 {
		t.Fatalf("order = %v, want S (index 1) first", order)
	}
	// Every order must be a permutation usable by the evaluator.
	out, _, err := eval.JoinProjectOrdered(context.Background(), q, db, order)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := eval.JoinProject(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.Equal(out, base) {
		t.Errorf("ordered result differs from body order")
	}
}

func TestOrderAtomsFallsBack(t *testing.T) {
	q := cq.MustParse("Q(X,Z) <- R(X,Y), S(Y,Z).")
	if got := OrderAtoms(q, nil); got != nil {
		t.Errorf("nil db: order = %v, want nil", got)
	}
	if got := OrderAtoms(q, database.New()); got != nil {
		t.Errorf("missing relations: order = %v, want nil", got)
	}
}

// TestStrategiesAgreeOnRandomDatabases is the planner's correctness
// cross-check: on seeded random queries and FD-satisfying random databases,
// the planned execution, every fixed strategy, and the naive baseline
// produce identical outputs.
func TestStrategiesAgreeOnRandomDatabases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	qp := datagen.QueryParams{
		MaxVars:            5,
		MaxAtoms:           4,
		MaxArity:           3,
		HeadFraction:       0.7,
		RepeatRelationProb: 0.3,
		SimpleFDProb:       0.15,
		CompoundFDProb:     0.2,
	}
	for i := 0; i < 60; i++ {
		q := datagen.RandomQuery(rng, qp)
		db := datagen.RandomDatabase(rng, q, datagen.DBParams{Tuples: 12, Universe: 6})

		want, _, err := eval.Naive(q, db)
		if err != nil {
			t.Fatalf("query %d (%s): naive: %v", i, q, err)
		}
		p, err := ChooseForDB(q, db)
		if err != nil {
			t.Fatalf("query %d (%s): choose: %v", i, q, err)
		}
		got, _, err := Execute(context.Background(), p, q, db)
		if err != nil {
			t.Fatalf("query %d (%s): planned %v: %v", i, q, p.Strategy, err)
		}
		if !relation.Equal(want, got) {
			t.Errorf("query %d (%s): planned %v disagrees with naive: %d vs %d tuples",
				i, q, p.Strategy, got.Size(), want.Size())
		}
		jp, _, err := eval.JoinProjectOrdered(context.Background(), q, db, OrderAtoms(q, db))
		if err != nil {
			t.Fatalf("query %d: join-project: %v", i, err)
		}
		gj, _, err := eval.GenericJoin(q, db)
		if err != nil {
			t.Fatalf("query %d: generic join: %v", i, err)
		}
		if !relation.Equal(want, jp) || !relation.Equal(want, gj) {
			t.Errorf("query %d (%s): fixed strategies disagree: naive %d, jp %d, gj %d",
				i, q, want.Size(), jp.Size(), gj.Size())
		}
		if eval.IsAcyclic(q) {
			ya, _, err := eval.Yannakakis(q, db)
			if err != nil {
				t.Fatalf("query %d: yannakakis: %v", i, err)
			}
			if !relation.Equal(want, ya) {
				t.Errorf("query %d (%s): yannakakis disagrees: %d vs %d tuples",
					i, q, ya.Size(), want.Size())
			}
		}
	}
}
