package plan

import (
	"math"

	"cqbound/internal/cq"
	"cqbound/internal/database"
)

// OrderAtoms returns a greedy most-selective-first join order for the
// project-early plan: indices into q.Body. The first atom is the one with
// the smallest relation; each following pick minimizes the System-R style
// cardinality estimate |atom| / Π_v V(R, v) over variables v already bound,
// always preferring atoms connected to the bound set so cartesian products
// are deferred as long as possible. Ties break on body position, so the
// order is deterministic. When db lacks a relation the order falls back to
// body order (nil).
func OrderAtoms(q *cq.Query, db *database.Database) []int {
	n := len(q.Body)
	if n <= 1 || db == nil {
		return nil
	}
	sizes := make([]float64, n)
	// distinct[i][v] is the sharpest (smallest) distinct-value count among
	// the positions of atom i holding variable v.
	distinct := make([]map[cq.Variable]float64, n)
	for i, a := range q.Body {
		r := db.Relation(a.Relation)
		if r == nil || r.Arity() != a.Arity() {
			return nil
		}
		sizes[i] = float64(r.Size())
		distinct[i] = make(map[cq.Variable]float64, a.Arity())
		for pos, v := range a.Vars {
			d := float64(r.DistinctCount(pos))
			if prev, ok := distinct[i][v]; !ok || d < prev {
				distinct[i][v] = d
			}
		}
	}

	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := make(map[cq.Variable]bool)
	for len(order) < n {
		best, bestConnected := -1, false
		bestScore := math.Inf(1)
		for i := range q.Body {
			if used[i] {
				continue
			}
			score := sizes[i]
			connected := len(order) == 0 // the first pick needs no link
			for v, d := range distinct[i] {
				if !bound[v] {
					continue
				}
				connected = true
				if d > 1 {
					score /= d
				}
			}
			switch {
			case best < 0,
				connected && !bestConnected,
				connected == bestConnected && score < bestScore:
				best, bestConnected, bestScore = i, connected, score
			}
		}
		order = append(order, best)
		used[best] = true
		for _, v := range q.Body[best].Vars {
			bound[v] = true
		}
	}
	return order
}
