package plan

// Strategy selection; package documentation lives in doc.go.

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"strings"

	"cqbound/internal/core"
	"cqbound/internal/cover"
	"cqbound/internal/cq"
	"cqbound/internal/database"
	"cqbound/internal/eval"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
)

// Strategy identifies an evaluation algorithm.
type Strategy int

// Available strategies.
const (
	// StrategyYannakakis: semijoin reduction over a join tree; only valid
	// for α-acyclic queries.
	StrategyYannakakis Strategy = iota
	// StrategyProjectEarly: left-deep joins with eager projection along a
	// planner-chosen atom order (Corollary 4.8).
	StrategyProjectEarly
	// StrategyGenericJoin: worst-case optimal variable-at-a-time join.
	StrategyGenericJoin
)

func (s Strategy) String() string {
	switch s {
	case StrategyYannakakis:
		return "yannakakis"
	case StrategyProjectEarly:
		return "project-early"
	case StrategyGenericJoin:
		return "generic-join"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// projectEarlyMaxColor is the exclusive upper bound on C(chase(Q)) under
// which a cyclic query still gets the project-early plan: below exponent 2
// the Corollary 4.8 cost O(rmax^{C+1}) stays under the cubic cost a generic
// join may pay on adversarial inputs.
var projectEarlyMaxColor = big.NewRat(2, 1)

// Plan records the chosen strategy together with the structural facts that
// justified it.
type Plan struct {
	// Strategy is the selected evaluation algorithm.
	Strategy Strategy
	// AtomOrder is the join order for StrategyProjectEarly as indices into
	// the query body; nil means body order (the other strategies order
	// their own work). Filled by OrderAtoms when a database is available.
	AtomOrder []int
	// Acyclic reports whether the body hypergraph is α-acyclic.
	Acyclic bool
	// Class is the dependency class of chase(Q).
	Class core.FDClass
	// ColorNumber is C(chase(Q)) when selection computed it; nil when the
	// class is compound (pricing it would need the entropy LP).
	ColorNumber *big.Rat
	// RhoStar is the fractional edge cover number ρ*(Q), the AGM exponent
	// backing the generic-join cost bound; nil when its LP failed.
	RhoStar *big.Rat
	// Rationale explains the selection in terms of the paper's results.
	Rationale string
}

// String renders the plan for humans: strategy, order, and rationale.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s", p.Strategy)
	if p.AtomOrder != nil {
		fmt.Fprintf(&b, "\natom order: %v", p.AtomOrder)
	}
	fmt.Fprintf(&b, "\nrationale: %s", p.Rationale)
	return b.String()
}

// Choose selects the evaluation strategy for q from structural facts alone:
// the GYO acyclicity test and, for cyclic queries, the chase and the
// polynomial color-number stage. It never touches data and never solves the
// entropy LP.
func Choose(q *cq.Query) (*Plan, error) {
	st, err := core.StructureOf(q)
	if err != nil {
		return nil, err
	}
	p := &Plan{Acyclic: eval.IsAcyclic(q), Class: st.Class}
	if r, err := cover.FractionalEdgeCover(q); err == nil {
		p.RhoStar = r.Rho
	}
	if p.Acyclic {
		p.Strategy = StrategyYannakakis
		p.Rationale = "α-acyclic (GYO reduction succeeds): Yannakakis' semijoin " +
			"algorithm runs in O(|D| + |Q(D)|) with intermediates bounded by input + output"
		return p, nil
	}
	ci, err := core.ColorNumberStage(st, false)
	if err != nil {
		return nil, err
	}
	p.ColorNumber = ci.Number
	if ci.Number != nil && ci.Tight && ci.Number.Cmp(projectEarlyMaxColor) < 0 {
		p.Strategy = StrategyProjectEarly
		p.Rationale = fmt.Sprintf("cyclic with small tight color number C(chase(Q)) = %s < 2 "+
			"(Thm 4.4): the Corollary 4.8 project-early plan costs O(|var(Q)|²·|Q|²·rmax^{%s+1}) "+
			"and its intermediates never exceed rmax^C",
			ci.Number.RatString(), ci.Number.RatString())
		return p, nil
	}
	p.Strategy = StrategyGenericJoin
	switch {
	case ci.Number == nil:
		p.Rationale = "cyclic with compound dependencies: pricing C(chase(Q)) needs the " +
			"exponential entropy LP (Prop 6.10), so fall back to the worst-case optimal " +
			"generic join, safe under the AGM bound " + rhoText(p.RhoStar)
	default:
		p.Rationale = fmt.Sprintf("cyclic with color number C(chase(Q)) = %s ≥ 2: intermediate "+
			"relations of the join-project plan can reach rmax^C, so run the worst-case optimal "+
			"generic join bounded by %s", ci.Number.RatString(), rhoText(p.RhoStar))
	}
	return p, nil
}

func rhoText(rho *big.Rat) string {
	if rho == nil {
		return "rmax^ρ*(Q)"
	}
	return fmt.Sprintf("rmax^ρ* = rmax^%s", rho.RatString())
}

// ChooseForDB is Choose followed by cardinality-aware atom ordering against
// db (a no-op for strategies that order their own work).
func ChooseForDB(q *cq.Query, db *database.Database) (*Plan, error) {
	p, err := Choose(q)
	if err != nil {
		return nil, err
	}
	if p.Strategy == StrategyProjectEarly {
		p.AtomOrder = OrderAtoms(q, db)
	}
	return p, nil
}

// Execute runs the plan on db. The query must be the one the plan was
// chosen for.
func Execute(ctx context.Context, p *Plan, q *cq.Query, db *database.Database) (*relation.Relation, eval.Stats, error) {
	return ExecuteOpts(ctx, p, q, db, nil)
}

// ExecuteOpts is Execute with sharded execution. When opts enables
// sharding, the Yannakakis and project-early strategies route their joins,
// semijoins and projections through internal/shard: the planner's atom
// order determines which relations meet at each join, and the partition key
// is chosen per join among the columns that order makes shared (falling
// back to single-shard execution when a step's inputs are below the row
// threshold or share no column). The generic join extends one variable at a
// time and has no binary join to partition, so it uses opts only for
// tracing. When opts carries a tracer, ExecuteOpts stamps the strategy and
// the paper's worst-case bound on the root span before dispatching.
func ExecuteOpts(ctx context.Context, p *Plan, q *cq.Query, db *database.Database, opts *shard.Options) (*relation.Relation, eval.Stats, error) {
	annotateRoot(p, q, db, opts)
	var (
		out *relation.Relation
		st  eval.Stats
		err error
	)
	switch p.Strategy {
	case StrategyYannakakis:
		out, st, err = eval.YannakakisExec(ctx, q, db, opts)
	case StrategyProjectEarly:
		out, st, err = eval.JoinProjectExec(ctx, q, db, p.AtomOrder, opts)
	case StrategyGenericJoin:
		out, st, err = eval.GenericJoinExec(ctx, q, db, opts)
	default:
		return nil, eval.Stats{}, fmt.Errorf("plan: unknown strategy %v", p.Strategy)
	}
	if err == nil && out != nil {
		if tr := opts.Tracer(); tr != nil {
			tr.Root().AddOut(out.Size())
		}
	}
	return out, st, err
}

// BoundRows returns the paper's pre-execution worst-case row bound for the
// plan's strategy over db — the number annotateRoot stamps on a traced
// root span, available before the query runs so a serving front-end can
// admit or queue work against its memory budget: Σ|Rᵢ| for Yannakakis
// (intermediates ≤ input + output), rmax^C for project-early (Thm 4.4),
// and the AGM bound rmax^ρ* for the generic join. The note is the
// human-readable form. ok is false when the inputs the bound needs (a
// relation's rmax, the plan's exponents) are unavailable.
func BoundRows(p *Plan, q *cq.Query, db *database.Database) (rows float64, note string, ok bool) {
	switch p.Strategy {
	case StrategyYannakakis:
		in := 0
		for _, a := range q.Body {
			if r := db.Relation(a.Relation); r != nil {
				in += r.Size()
			}
		}
		return float64(in), "Yannakakis: intermediates ≤ input + output rows", true
	case StrategyProjectEarly:
		if p.ColorNumber != nil {
			if rmax, err := db.RMax(q); err == nil {
				c, _ := p.ColorNumber.Float64()
				return math.Pow(float64(rmax), c),
					fmt.Sprintf("Thm 4.4 bound rmax^C = %d^%s", rmax, p.ColorNumber.RatString()), true
			}
		}
	case StrategyGenericJoin:
		if p.RhoStar != nil {
			if rmax, err := db.RMax(q); err == nil {
				rho, _ := p.RhoStar.Float64()
				return math.Pow(float64(rmax), rho),
					fmt.Sprintf("AGM bound rmax^ρ* = %d^%s", rmax, p.RhoStar.RatString()), true
			}
		}
	}
	return 0, "", false
}

// annotateRoot records the chosen strategy and the paper's worst-case
// intermediate-size bound on the evaluation's root span, so a rendered
// trace shows the theoretical ceiling next to the actual row counts. It is
// a no-op when opts carries no tracer.
func annotateRoot(p *Plan, q *cq.Query, db *database.Database, opts *shard.Options) {
	tr := opts.Tracer()
	if tr == nil {
		return
	}
	tr.SetStrategy(p.Strategy.String())
	if rows, note, ok := BoundRows(p, q, db); ok {
		root := tr.Root()
		root.SetEst(rows)
		root.SetNote(note)
	}
}
