// Package plan is the bound-driven query planner: it turns the paper's
// structural analysis into an executable decision about how to evaluate a
// conjunctive query. The selection rule follows the cost bounds proved for
// each strategy:
//
//   - α-acyclic queries (GYO reduction succeeds) run under Yannakakis'
//     algorithm, whose intermediates stay within O(input + output);
//   - cyclic queries whose color number C(chase(Q)) is small and tight run
//     the project-early plan of Corollary 4.8, whose cost is polynomial with
//     exponent C + 1;
//   - everything else — large color numbers, or compound dependencies where
//     only the exponential entropy LP could price the query — runs the
//     worst-case optimal generic join, safe under the AGM bound rmax^ρ*(Q).
//
// Selection needs only the cheap structural stage of internal/core (the
// chase and the polynomial coloring LPs); it never pays for the entropy LP.
// Atom ordering for the project-early plan is a separate, data-aware step
// (order.go) so a structural plan can be cached per query and re-ordered
// per database.
//
// # Execution
//
// Execute runs a chosen plan; ExecuteOpts additionally threads a
// *shard.Options into the strategies that expose binary joins. Under
// sharding, the planner's atom order decides which relations meet at each
// join, and internal/shard's exchange router decides per join whether to
// reuse the partitioning the previous step left, repartition one side,
// broadcast a small side, or fall back to single-shard execution — see the
// internal/shard package documentation for the exact ladder. The plan
// itself is unchanged by sharding: strategy selection is structural, and
// sharded execution is output-identical by construction, so a cached plan
// serves both sharded and unsharded engines.
package plan
