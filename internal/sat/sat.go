// Package sat provides a small DPLL solver for CNF formulas, the
// NP-complete 2-coloring decision of Proposition 7.3 for queries with
// compound functional dependencies, and the 3-SAT reduction from that
// proposition's proof.
package sat

import (
	"fmt"
)

// Literal is a propositional literal: +v for variable v, -v for its
// negation. Variables are numbered from 1.
type Literal int

// Var returns the literal's variable.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Clause is a disjunction of literals.
type Clause []Literal

// CNF is a conjunction of clauses over NumVars variables.
type CNF struct {
	NumVars int
	Clauses []Clause
}

// Validate checks literal ranges.
func (c CNF) Validate() error {
	for i, cl := range c.Clauses {
		for _, l := range cl {
			if l == 0 || l.Var() > c.NumVars {
				return fmt.Errorf("sat: clause %d has bad literal %d", i, l)
			}
		}
	}
	return nil
}

// Solve decides satisfiability by DPLL with unit propagation and pure
// literal elimination. When satisfiable, it returns an assignment indexed
// 1..NumVars.
func Solve(c CNF) (bool, []bool) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	assignment := make([]int8, c.NumVars+1) // 0 unset, 1 true, -1 false
	if dpll(c.Clauses, assignment) {
		out := make([]bool, c.NumVars+1)
		for v := 1; v <= c.NumVars; v++ {
			out[v] = assignment[v] == 1
		}
		return true, out
	}
	return false, nil
}

func value(assignment []int8, l Literal) int8 {
	a := assignment[l.Var()]
	if l < 0 {
		return -a
	}
	return a
}

func dpll(clauses []Clause, assignment []int8) bool {
	// Unit propagation.
	var trail []int
	for {
		unit := Literal(0)
		for _, cl := range clauses {
			unassigned := Literal(0)
			count := 0
			sat := false
			for _, l := range cl {
				switch value(assignment, l) {
				case 1:
					sat = true
				case 0:
					unassigned = l
					count++
				}
			}
			if sat {
				continue
			}
			if count == 0 {
				// Conflict: undo and fail.
				for _, v := range trail {
					assignment[v] = 0
				}
				return false
			}
			if count == 1 {
				unit = unassigned
				break
			}
		}
		if unit == 0 {
			break
		}
		v := unit.Var()
		if unit > 0 {
			assignment[v] = 1
		} else {
			assignment[v] = -1
		}
		trail = append(trail, v)
	}
	// Find an unassigned variable appearing in an unsatisfied clause.
	branch := 0
	done := true
	for _, cl := range clauses {
		sat := false
		var cand int
		for _, l := range cl {
			if value(assignment, l) == 1 {
				sat = true
				break
			}
			if value(assignment, l) == 0 {
				cand = l.Var()
			}
		}
		if !sat {
			done = false
			if cand != 0 {
				branch = cand
				break
			}
		}
	}
	if done {
		// Every clause satisfied.
		return true
	}
	if branch == 0 {
		for _, v := range trail {
			assignment[v] = 0
		}
		return false
	}
	for _, val := range []int8{1, -1} {
		assignment[branch] = val
		if dpll(clauses, assignment) {
			return true
		}
		assignment[branch] = 0
	}
	for _, v := range trail {
		assignment[v] = 0
	}
	return false
}
