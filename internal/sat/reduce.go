package sat

import (
	"fmt"

	"cqbound/internal/cq"
)

// Reduce3SAT builds the Proposition 7.3 query for a 3-CNF formula E over
// variables x_1..x_n: deciding whether the query (with its compound
// functional dependencies) admits a valid 2-coloring with color number 2 is
// equivalent to the satisfiability of E. Per formula variable x_i the query
// carries the gadget
//
//	R_i1(X_i, X̄_i, A) ∧ R_i2(Y_i, Ȳ_i, B) ∧ R_i3(X_i, Y_i) ∧ R_i4(X̄_i, Ȳ_i)
//
// with dependencies X_i X̄_i → A and Y_i Ȳ_i → B, and per clause an atom
// S_i(ℓ1, ℓ2, ℓ3, A) whose first three positions form a compound key for
// the fourth. The head is Q(A, B).
func Reduce3SAT(e CNF) (*cq.Query, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	for i, cl := range e.Clauses {
		if len(cl) == 0 || len(cl) > 3 {
			return nil, fmt.Errorf("sat: clause %d has %d literals, want 1..3", i, len(cl))
		}
	}
	pos := func(i int) cq.Variable { return cq.Variable(fmt.Sprintf("X%d", i)) }
	neg := func(i int) cq.Variable { return cq.Variable(fmt.Sprintf("Xbar%d", i)) }
	posY := func(i int) cq.Variable { return cq.Variable(fmt.Sprintf("Y%d", i)) }
	negY := func(i int) cq.Variable { return cq.Variable(fmt.Sprintf("Ybar%d", i)) }
	litVar := func(l Literal) cq.Variable {
		if l > 0 {
			return pos(l.Var())
		}
		return neg(l.Var())
	}

	q := &cq.Query{Head: cq.Atom{Relation: "Q", Vars: []cq.Variable{"A", "B"}}}
	for i := 1; i <= e.NumVars; i++ {
		r1 := fmt.Sprintf("R%d_1", i)
		r2 := fmt.Sprintf("R%d_2", i)
		q.Body = append(q.Body,
			cq.Atom{Relation: r1, Vars: []cq.Variable{pos(i), neg(i), "A"}},
			cq.Atom{Relation: r2, Vars: []cq.Variable{posY(i), negY(i), "B"}},
			cq.Atom{Relation: fmt.Sprintf("R%d_3", i), Vars: []cq.Variable{pos(i), posY(i)}},
			cq.Atom{Relation: fmt.Sprintf("R%d_4", i), Vars: []cq.Variable{neg(i), negY(i)}},
		)
		q.FDs = append(q.FDs,
			cq.FD{Relation: r1, From: []int{1, 2}, To: 3},
			cq.FD{Relation: r2, From: []int{1, 2}, To: 3},
		)
	}
	for ci, cl := range e.Clauses {
		rel := fmt.Sprintf("S%d", ci+1)
		atom := cq.Atom{Relation: rel}
		for _, l := range cl {
			atom.Vars = append(atom.Vars, litVar(l))
		}
		// Pad clauses with fewer than 3 literals by repeating the last
		// literal (logically harmless: the disjunction is unchanged).
		for len(atom.Vars) < 3 {
			atom.Vars = append(atom.Vars, atom.Vars[len(atom.Vars)-1])
		}
		atom.Vars = append(atom.Vars, "A")
		q.Body = append(q.Body, atom)
		q.FDs = append(q.FDs, cq.FD{Relation: rel, From: []int{1, 2, 3}, To: 4})
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("sat: internal: reduction produced invalid query: %v", err)
	}
	return q, nil
}
