package sat

import (
	"math/rand"
	"testing"

	"cqbound/internal/coloring"
	"cqbound/internal/datagen"
)

func TestSolveBasics(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1) forces x2.
	ok, a := Solve(CNF{NumVars: 2, Clauses: []Clause{{1, 2}, {-1}}})
	if !ok || a[1] || !a[2] {
		t.Fatalf("got %v %v", ok, a)
	}
	// x1 ∧ ¬x1 unsat.
	ok, _ = Solve(CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}})
	if ok {
		t.Fatal("accepted contradiction")
	}
	// Empty CNF: satisfiable.
	ok, _ = Solve(CNF{NumVars: 0})
	if !ok {
		t.Fatal("rejected empty CNF")
	}
}

func TestSolvePigeonhole(t *testing.T) {
	// 3 pigeons, 2 holes: variables p_{i,h} = 2(i-1)+h. Unsatisfiable.
	v := func(i, h int) Literal { return Literal(2*(i-1) + h) }
	cnf := CNF{NumVars: 6}
	for i := 1; i <= 3; i++ {
		cnf.Clauses = append(cnf.Clauses, Clause{v(i, 1), v(i, 2)})
	}
	for h := 1; h <= 2; h++ {
		for i := 1; i <= 3; i++ {
			for j := i + 1; j <= 3; j++ {
				cnf.Clauses = append(cnf.Clauses, Clause{-v(i, h), -v(j, h)})
			}
		}
	}
	if ok, _ := Solve(cnf); ok {
		t.Fatal("pigeonhole 3-into-2 declared satisfiable")
	}
}

func TestSolveRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(10)
		cnf := CNF{NumVars: n}
		for i := 0; i < m; i++ {
			width := 1 + rng.Intn(3)
			var cl Clause
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					cl = append(cl, Literal(v))
				} else {
					cl = append(cl, Literal(-v))
				}
			}
			cnf.Clauses = append(cnf.Clauses, cl)
		}
		want := bruteForce(cnf)
		got, a := Solve(cnf)
		if got != want {
			t.Fatalf("trial %d: Solve = %v, brute force = %v on %v", trial, got, want, cnf)
		}
		if got && !assignmentSatisfies(cnf, a) {
			t.Fatalf("trial %d: returned assignment does not satisfy", trial)
		}
	}
}

func bruteForce(c CNF) bool {
	for mask := 0; mask < 1<<c.NumVars; mask++ {
		a := make([]bool, c.NumVars+1)
		for v := 1; v <= c.NumVars; v++ {
			a[v] = mask&(1<<(v-1)) != 0
		}
		if assignmentSatisfies(c, a) {
			return true
		}
	}
	return false
}

func assignmentSatisfies(c CNF, a []bool) bool {
	for _, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			if (l > 0 && a[l.Var()]) || (l < 0 && !a[l.Var()]) {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func TestDecideTwoColoringMatchesNoFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.6,
		})
		_, want := coloring.TwoColoringNoFDs(q)
		got := DecideTwoColoring(q)
		if got.Exists != want {
			t.Fatalf("trial %d: SAT says %v, pair test says %v for %s", trial, got.Exists, want, q)
		}
	}
}

func TestDecideTwoColoringMatchesSimpleFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	trials := 0
	for trials < 40 {
		q := datagen.RandomQuery(rng, datagen.QueryParams{
			MaxVars: 5, MaxAtoms: 4, MaxArity: 3, HeadFraction: 0.6,
			SimpleFDProb: 0.3, RepeatRelationProb: 0.3,
		})
		_, _, want, err := coloring.TwoColoringSimpleFDs(q)
		if err != nil {
			continue
		}
		trials++
		got := DecideTwoColoring(q)
		if got.Exists != want {
			t.Fatalf("trial %d: SAT says %v, Theorem 5.10 pipeline says %v for %s",
				trials, got.Exists, want, q)
		}
	}
}

func TestReduce3SATRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(6)
		cnf := CNF{NumVars: n}
		for i := 0; i < m; i++ {
			var cl Clause
			width := 1 + rng.Intn(3)
			for j := 0; j < width; j++ {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					cl = append(cl, Literal(v))
				} else {
					cl = append(cl, Literal(-v))
				}
			}
			cnf.Clauses = append(cnf.Clauses, cl)
		}
		q, err := Reduce3SAT(cnf)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Solve(cnf)
		got := DecideTwoColoring(q)
		if got.Exists != want {
			t.Fatalf("trial %d: formula satisfiable = %v but coloring exists = %v\nformula: %v\nquery: %s",
				trial, want, got.Exists, cnf, q)
		}
	}
}

func TestReduce3SATRejectsWideClauses(t *testing.T) {
	if _, err := Reduce3SAT(CNF{NumVars: 4, Clauses: []Clause{{1, 2, 3, 4}}}); err == nil {
		t.Fatal("accepted 4-literal clause")
	}
}

func TestReduce3SATKnownFormulas(t *testing.T) {
	// (x1) ∧ (¬x1): unsatisfiable.
	q, err := Reduce3SAT(CNF{NumVars: 1, Clauses: []Clause{{1}, {-1}}})
	if err != nil {
		t.Fatal(err)
	}
	if DecideTwoColoring(q).Exists {
		t.Fatal("unsatisfiable formula mapped to colorable query")
	}
	// (x1 ∨ x2): satisfiable.
	q2, err := Reduce3SAT(CNF{NumVars: 2, Clauses: []Clause{{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !DecideTwoColoring(q2).Exists {
		t.Fatal("satisfiable formula mapped to uncolorable query")
	}
}
