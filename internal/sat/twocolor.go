package sat

import (
	"math/big"

	"cqbound/internal/chase"
	"cqbound/internal/coloring"
	"cqbound/internal/cq"
)

// TwoColoringDecision is the result of DecideTwoColoring.
type TwoColoringDecision struct {
	// Exists reports whether chase(Q) admits a valid coloring with 2 colors
	// and color number 2 — by Theorem 5.10 exactly the condition under
	// which tw(Q(D)) cannot be bounded in tw(D).
	Exists bool
	// Witness, when Exists, is such a coloring of Chased.
	Witness coloring.Coloring
	// Chased is chase(Q).
	Chased *cq.Query
}

// DecideTwoColoring decides, for arbitrary (possibly compound) functional
// dependencies, whether chase(Q) has a valid coloring with 2 colors
// achieving color number 2. The problem is NP-complete in general
// (Proposition 7.3); this encoding hands it to the DPLL solver with two
// booleans per variable (has color 1 / has color 2):
//
//   - each lifted dependency From → Y yields, per color c,
//     (¬c(Y) ∨ c(From₁) ∨ ... ∨ c(Fromₗ));
//   - both colors must appear among head variables;
//   - no body atom may see both colors: (¬c₁(X) ∨ ¬c₂(Y)) for all pairs
//     X, Y inside one atom.
func DecideTwoColoring(q *cq.Query) TwoColoringDecision {
	ch := chase.Chase(q).Query
	vars := ch.Variables()
	index := make(map[cq.Variable]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	c1 := func(v cq.Variable) Literal { return Literal(2*index[v] + 1) }
	c2 := func(v cq.Variable) Literal { return Literal(2*index[v] + 2) }
	cnf := CNF{NumVars: 2 * len(vars)}

	for _, fd := range ch.VarFDs() {
		for _, color := range []func(cq.Variable) Literal{c1, c2} {
			cl := Clause{-color(fd.To)}
			for _, x := range fd.From {
				cl = append(cl, color(x))
			}
			cnf.Clauses = append(cnf.Clauses, cl)
		}
	}
	var head1, head2 Clause
	for _, v := range ch.HeadVars() {
		head1 = append(head1, c1(v))
		head2 = append(head2, c2(v))
	}
	cnf.Clauses = append(cnf.Clauses, head1, head2)
	for _, a := range ch.Body {
		dv := a.DistinctVars()
		for _, x := range dv {
			for _, y := range dv {
				cnf.Clauses = append(cnf.Clauses, Clause{-c1(x), -c2(y)})
			}
		}
	}

	ok, assignment := Solve(cnf)
	if !ok {
		return TwoColoringDecision{Exists: false, Chased: ch}
	}
	witness := make(coloring.Coloring)
	for _, v := range vars {
		s := coloring.ColorSet{}
		if assignment[c1(v).Var()] {
			s[1] = true
		}
		if assignment[c2(v).Var()] {
			s[2] = true
		}
		if len(s) > 0 {
			witness[v] = s
		}
	}
	if err := coloring.Validate(ch, witness); err != nil {
		panic("sat: internal: decoded coloring invalid: " + err.Error())
	}
	if n, err := coloring.Number(ch, witness); err != nil || n.Cmp(big.NewRat(2, 1)) != 0 {
		panic("sat: internal: decoded coloring does not have color number 2")
	}
	return TwoColoringDecision{Exists: true, Witness: witness, Chased: ch}
}
