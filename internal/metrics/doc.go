// Package metrics is the engine's typed metric registry: named gauges
// sampled from the engine's existing counter families at read time, and
// lock-free power-of-two histograms fed per evaluation (query latency,
// peak intermediate rows, spilled bytes).
//
// The Registry exposes everything two ways: Snapshot returns a plain
// map[string]any for programmatic consumers, and ServeHTTP implements
// http.Handler writing the same data as a single JSON object — the shape
// expvar serves on /debug/vars, so existing scrapers work unchanged:
//
//	http.Handle("/debug/cqbound", engine.Metrics())
//
// Gauges are callbacks, not stored values: registering one costs a map
// entry, and the engine's counters are only read when somebody looks.
// Histograms trade quantile precision for a wait-free Observe — counts,
// sums and extremes are exact; P50/P90/P99 are bucketed to the nearest
// power of two, plenty for dashboards and regression gates.
package metrics
