package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestHistogramExactFields(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h")
	for _, v := range []int64{1, 2, 4, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1107 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.P50 < 2 || s.P50 > 8 {
		t.Fatalf("P50 = %d, want within a factor of two of 4", s.P50)
	}
	if s.P99 < 512 || s.P99 > 2048 {
		t.Fatalf("P99 = %d, want within a factor of two of 1000", s.P99)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram()
	if s := h.Snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	h.Observe(0)
	h.Observe(-5) // clamps to zero
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("zero snapshot = %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Sum != 8*1000*1001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
}

func TestRegistryGaugesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.Gauge("g", func() int64 { return v })
	h := r.NewHistogram("lat")
	h.Observe(3)
	snap := r.Snapshot()
	if snap["g"] != int64(7) {
		t.Fatalf("gauge = %v", snap["g"])
	}
	hs, ok := snap["lat"].(HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Fatalf("hist = %v", snap["lat"])
	}
	v = 9
	if r.Snapshot()["g"] != int64(9) {
		t.Fatal("gauge must sample at read time")
	}
	if r.NewHistogram("lat") != h {
		t.Fatal("NewHistogram must be idempotent per name")
	}
}

func TestServeHTTPIsExpvarShapedJSON(t *testing.T) {
	r := NewRegistry()
	r.Gauge("queries", func() int64 { return 42 })
	r.NewHistogram("latency").Observe(10)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("body is not one JSON object: %v\n%s", err, rec.Body.String())
	}
	if m["queries"] != float64(42) {
		t.Fatalf("queries = %v", m["queries"])
	}
	lat, ok := m["latency"].(map[string]any)
	if !ok || lat["count"] != float64(1) {
		t.Fatalf("latency = %v", m["latency"])
	}
}
