package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics: gauges (callbacks sampled at read time,
// backed by the engine's existing counters) and histograms (observation
// distributions fed per query). A Registry is safe for concurrent use;
// reads never block writers beyond the registration lock.
type Registry struct {
	mu     sync.Mutex
	order  []string
	gauges map[string]func() int64
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		gauges: make(map[string]func() int64),
		hists:  make(map[string]*Histogram),
	}
}

// Gauge registers fn under name; each Snapshot or HTTP read calls it for
// the current value. Re-registering a name replaces the callback.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gauges[name]; !ok {
		if _, ok := r.hists[name]; !ok {
			r.order = append(r.order, name)
		}
	}
	r.gauges[name] = fn
}

// NewHistogram registers (or returns the existing) histogram under name.
func (r *Registry) NewHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := newHistogram()
	if _, ok := r.gauges[name]; !ok {
		r.order = append(r.order, name)
	}
	r.hists[name] = h
	return h
}

// Names returns every registered metric name in registration order — the
// stable iteration order exporters (Prometheus exposition) render in.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// GaugeValue samples the named gauge (0, false when the name is not a
// gauge).
func (r *Registry) GaugeValue(name string) (int64, bool) {
	r.mu.Lock()
	fn, ok := r.gauges[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	return fn(), true
}

// Histogram returns the named histogram, or nil when the name is not a
// histogram. Exporters use it to reach the raw buckets that
// HistogramSnapshot intentionally omits.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// Snapshot samples every metric: gauges as int64, histograms as
// HistogramSnapshot. The map is a fresh copy the caller owns.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	gauges := make(map[string]func() int64, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()
	out := make(map[string]any, len(names))
	for _, n := range names {
		if fn, ok := gauges[n]; ok {
			out[n] = fn()
		} else if h, ok := hists[n]; ok {
			out[n] = h.Snapshot()
		}
	}
	return out
}

// ServeHTTP writes the snapshot as one JSON object, the same shape expvar
// serves on /debug/vars, so existing expvar scrapers can point at it.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "{\n")
	for i, n := range names {
		b, err := json.Marshal(snap[n])
		if err != nil {
			continue
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "%q: %s%s\n", n, b, comma)
	}
	fmt.Fprintf(w, "}\n")
}

// histBuckets is one bucket per bit length of the observed value: bucket 0
// holds zero and negative observations, bucket i holds values in
// [2^(i-1), 2^i). 64 buckets cover the full int64 range, so Observe never
// range-checks.
const histBuckets = 65

// Histogram is a lock-free power-of-two histogram: Observe is a handful
// of atomic adds, precise counts and sums, and quantiles approximated to
// within a factor of two by the bucket's geometric midpoint — the right
// trade for latency and byte-size distributions read by dashboards.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 until the first observation
	return h
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Buckets copies the raw power-of-two bucket counts, plus the exact sum
// and count, for exporters that render cumulative bucket series. Bucket i
// covers [2^(i-1), 2^i); bucket 0 holds zeros.
func (h *Histogram) Buckets() (buckets []int64, sum, count int64) {
	buckets = make([]int64, histBuckets)
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.sum.Load(), h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram: exact count,
// sum and extremes, quantiles approximate (bucketed by powers of two).
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Snapshot copies the histogram's state. Concurrent Observes may land
// between field reads; each field is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
		return s
	}
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	s.P50 = quantile(&counts, s.Count, 0.50)
	s.P90 = quantile(&counts, s.Count, 0.90)
	s.P99 = quantile(&counts, s.Count, 0.99)
	return s
}

// quantile walks the cumulative bucket counts to the bucket holding rank
// q·total and returns that bucket's geometric midpoint (bucket i covers
// [2^(i-1), 2^i)); bucket 0 is exactly zero.
func quantile(counts *[histBuckets]int64, total int64, q float64) int64 {
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			lo := int64(1) << (i - 1)
			return lo + lo/2
		}
	}
	return 0
}
