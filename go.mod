module cqbound

go 1.24
