package cqbound

// Observability: per-evaluation tracing (EvaluateTraced, ExplainAnalyze,
// trace sinks) and the typed metric registry (Metrics, MetricsSnapshot).
// Tracing is opt-in per call or engine-wide via WithTracing; an untraced
// evaluation pays only nil checks on the instrumentation points.

import (
	"context"
	"io"
	"os"
	"time"

	"cqbound/internal/batch"
	"cqbound/internal/metrics"
	"cqbound/internal/obs"
	"cqbound/internal/plan"
	"cqbound/internal/shard"
	"cqbound/internal/spill"
	"cqbound/internal/trace"
)

// Tracing types (internal/trace).
type (
	// Trace is one finished evaluation's span tree plus the per-query
	// deltas of the engine's five stats families.
	Trace = trace.Trace
	// TraceSpan is one node of a trace: a plan stage or operator with its
	// row counts, size estimate, fan-out and wall time.
	TraceSpan = trace.Span
	// TraceSink receives finished traces; Emit runs synchronously after
	// each traced evaluation.
	TraceSink = trace.Sink
	// TraceSinkFunc adapts a function to the TraceSink interface.
	TraceSinkFunc = trace.SinkFunc
	// SlowQueryLog is a TraceSink writing one JSON line per trace at or
	// above a wall-time threshold.
	SlowQueryLog = trace.SlowQueryLog
	// MetricsRegistry exposes the engine's counters and trace-derived
	// histograms: Snapshot() for programmatic reads, ServeHTTP for an
	// expvar-compatible JSON endpoint.
	MetricsRegistry = metrics.Registry
	// HistogramSnapshot is a point-in-time copy of one histogram.
	HistogramSnapshot = metrics.HistogramSnapshot
)

// NewSlowQueryLog returns a TraceSink that writes traces at least
// threshold long to w as JSON lines; a zero threshold logs every trace.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return trace.NewSlowQueryLog(w, threshold)
}

// WithTracing makes every Evaluate run traced: each call builds the full
// span tree and per-query stats deltas, feeds the trace-derived
// histograms, and emits the trace to the engine's sinks. The trace itself
// is returned only by EvaluateTraced — plain Evaluate discards it after
// the sinks have seen it. Overhead is a few percent of wall time at the
// default batch size (cqbench -tracebench measures it); without this
// option (and outside EvaluateTraced calls) evaluation pays only nil
// checks on the instrumentation points.
func WithTracing() Option {
	return func(e *Engine) {
		e.tracingOn = true
	}
}

// WithTraceSink registers a sink that receives every finished trace —
// from EvaluateTraced calls and, under WithTracing, from every Evaluate.
// Sinks run synchronously in the evaluating goroutine, in registration
// order; concurrent evaluations call Emit concurrently.
func WithTraceSink(s TraceSink) Option {
	return func(e *Engine) {
		if s != nil {
			e.sinks = append(e.sinks, s)
		}
	}
}

// WithSlowQueryThreshold registers a slow-query log on standard error:
// any traced evaluation at or above d writes one structured JSON line
// (query, strategy, duration, slowest stage, nonzero stats deltas). Use
// WithTraceSink(NewSlowQueryLog(w, d)) to log elsewhere. Only traced
// evaluations are candidates — combine with WithTracing to watch every
// query.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(e *Engine) {
		e.sinks = append(e.sinks, trace.NewSlowQueryLog(os.Stderr, d))
	}
}

// EvaluateTraced is Evaluate plus a full execution trace: the span tree
// of the planned strategy (per-operator rows in/out, the paper-derived
// and System-R size estimates next to the actuals, shard fan-out, batch
// and spill activity, wall times) and the exact per-query deltas of the
// five engine stats families, isolated from concurrent evaluations by
// running against private counters. The trace is also emitted to the
// engine's sinks and feeds the metric histograms. On evaluation error the
// partial trace is still returned alongside the error.
func (e *Engine) EvaluateTraced(ctx context.Context, q *Query, db *Database) (*Relation, EvalStats, *Trace, error) {
	if st := e.pinEpoch(db); st != nil {
		defer e.unpinEpoch(st)
	}
	tr := trace.NewTracer(q.String())
	tr.SetRequestID(obs.RequestID(ctx))
	ps := tr.Stage(trace.KindPlan, "plan")
	p, hit, err := e.planForHit(q, db)
	if hit {
		ps.SetNote("plan cache hit")
	} else {
		ps.SetNote("plan cache miss")
	}
	ps.End()
	if err != nil {
		return nil, EvalStats{}, nil, err
	}
	epBefore := e.epochCounters()
	opts, pv := e.tracedOptions(tr)
	out, st, err := plan.ExecuteOpts(ctx, p, q, db, opts)
	pv.close()
	pv.mergeInto(e)
	t := tr.Finish()
	t.Deltas = tracedDeltas(hit, pv, epBefore, e.epochCounters())
	if err != nil {
		return nil, st, t, err
	}
	e.observeTrace(t, pv)
	for _, s := range e.sinks {
		s.Emit(t)
	}
	return out, st, t, nil
}

// ExplainAnalyze evaluates q and renders the annotated plan: the strategy
// header, the span tree with the paper's worst-case bound and the
// per-operator estimates next to the actual row counts, the stats deltas,
// and the planner's rationale. The first output line is deterministic
// ("strategy: <name>"); row counts and wall times vary run to run.
func (e *Engine) ExplainAnalyze(ctx context.Context, q *Query, db *Database) (string, error) {
	_, _, t, err := e.EvaluateTraced(ctx, q, db)
	if err != nil {
		return "", err
	}
	p, err := e.planFor(q, db)
	if err != nil {
		return "", err
	}
	return t.Render() + "rationale: " + p.Rationale + "\n", nil
}

// tracedPrivate carries one traced evaluation's private counter targets:
// the evaluation runs against these so its deltas are exact under
// concurrency, then folds them into the engine-wide counters.
type tracedPrivate struct {
	shardM *shard.Metrics
	batchM *batch.Metrics
	scope  *spill.Scope
}

// tracedOptions clones the engine's sharding options for one traced
// evaluation, swapping in private metrics, a fresh spill scope, and the
// tracer. The clone is never shared between evaluations.
func (e *Engine) tracedOptions(tr *trace.Tracer) (*shard.Options, *tracedPrivate) {
	var o shard.Options
	if e.sharding != nil {
		o = *e.sharding
	} else {
		o.Shards = 1
	}
	pv := &tracedPrivate{shardM: &shard.Metrics{}}
	o.Metrics = pv.shardM
	if e.stream != nil {
		pv.batchM = &batch.Metrics{}
		o.Batch = pv.batchM
	}
	o.Spill = e.spill
	if e.spill != nil {
		pv.scope = spill.NewScope()
		o.Scope = pv.scope
	}
	o.Trace = tr
	return &o, pv
}

// close releases the evaluation's spill scope (discarding governed
// intermediate buffers); the scope's event counters stay readable.
func (pv *tracedPrivate) close() {
	pv.scope.Close()
}

// mergeInto folds the private counters into the engine-wide ones, so
// ShardStats and StreamStats see traced evaluations exactly like
// untraced ones.
func (pv *tracedPrivate) mergeInto(e *Engine) {
	if e.sharding != nil {
		pv.shardM.AddTo(e.sharding.Metrics)
	}
	pv.batchM.AddTo(e.stream)
}

// epochCounterSnapshot is the cumulative epoch-lifecycle counters at one
// instant; traced evaluations diff two snapshots for the epoch family.
type epochCounterSnapshot struct {
	commits, retired, sweptBufs, sweptBytes, incMemos, rebuilt, compactions int64
}

func (e *Engine) epochCounters() epochCounterSnapshot {
	return epochCounterSnapshot{
		commits:     e.commits.Load(),
		retired:     e.retiredEps.Load(),
		sweptBufs:   e.sweptBufs.Load(),
		sweptBytes:  e.sweptBytes.Load(),
		incMemos:    e.incMemos.Load(),
		rebuilt:     e.rebuiltRels.Load(),
		compactions: e.compactions.Load(),
	}
}

// tracedDeltas assembles the per-query deltas of the five stats families.
// Cache, shard, stream and spill are exact (private counters or scope
// attribution); epoch is a snapshot diff of the engine-wide lifecycle
// counters, exact unless a commit lands mid-evaluation.
func tracedDeltas(hit bool, pv *tracedPrivate, before, after epochCounterSnapshot) []trace.FamilyDelta {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	sh := pv.shardM.Snapshot()
	st := pv.batchM.Snapshot()
	ev := pv.scope.Events()
	return []trace.FamilyDelta{
		{Family: "cache", Counters: []trace.Counter{
			{Name: "hits", Value: b2i(hit)},
			{Name: "misses", Value: b2i(!hit)},
		}},
		{Family: "shard", Counters: []trace.Counter{
			{Name: "sharded_ops", Value: sh.ShardedOps},
			{Name: "fallback_ops", Value: sh.FallbackOps},
			{Name: "reused_rows", Value: sh.ReusedRows},
			{Name: "exchanged_rows", Value: sh.ExchangedRows},
			{Name: "broadcast_ops", Value: sh.BroadcastOps},
			{Name: "skew_splits", Value: sh.SkewSplits},
		}},
		{Family: "stream", Counters: []trace.Counter{
			{Name: "batches", Value: st.BatchesProduced},
			{Name: "rows_streamed", Value: st.RowsStreamed},
			{Name: "buffered_fallbacks", Value: st.BufferedFallbacks},
			{Name: "bytes_never_materialized", Value: st.BytesNeverMaterialized},
		}},
		{Family: "spill", Counters: []trace.Counter{
			{Name: "evictions", Value: ev.Evictions},
			{Name: "reloads", Value: ev.Reloads},
			{Name: "pin_waits", Value: ev.PinWaits},
			{Name: "spilled_bytes", Value: ev.SpilledBytes},
		}},
		{Family: "epoch", Counters: []trace.Counter{
			{Name: "commits", Value: after.commits - before.commits},
			{Name: "retired_epochs", Value: after.retired - before.retired},
			{Name: "swept_buffers", Value: after.sweptBufs - before.sweptBufs},
			{Name: "swept_bytes", Value: after.sweptBytes - before.sweptBytes},
			{Name: "incremental_memos", Value: after.incMemos - before.incMemos},
			{Name: "rebuilt_relations", Value: after.rebuilt - before.rebuilt},
			{Name: "compactions", Value: after.compactions - before.compactions},
		}},
	}
}

// metricsState is the lazily-built registry plus the trace-derived
// histograms it owns.
type metricsState struct {
	reg        *metrics.Registry
	latency    *metrics.Histogram
	peakRows   *metrics.Histogram
	spillBytes *metrics.Histogram
}

// Metrics returns the engine's metric registry, building it on first
// call: a gauge per engine counter (every field of the five stats
// families plus cache size), and the trace-derived histograms
// query_latency_ns, query_peak_rows and query_spill_bytes. Histograms
// record traced evaluations only (EvaluateTraced, or every Evaluate
// under WithTracing). The registry implements http.Handler, serving the
// snapshot as expvar-compatible JSON.
func (e *Engine) Metrics() *MetricsRegistry {
	return e.metricsState().reg
}

// MetricsSnapshot samples every registered metric: counters as int64,
// histograms as HistogramSnapshot values.
func (e *Engine) MetricsSnapshot() map[string]any {
	return e.Metrics().Snapshot()
}

func (e *Engine) metricsState() *metricsState {
	if ms := e.metrics.Load(); ms != nil {
		return ms
	}
	reg := metrics.NewRegistry()
	ms := &metricsState{
		reg:        reg,
		latency:    reg.NewHistogram("query_latency_ns"),
		peakRows:   reg.NewHistogram("query_peak_rows"),
		spillBytes: reg.NewHistogram("query_spill_bytes"),
	}
	reg.Gauge("cache_hits", func() int64 { h, _ := e.CacheStats(); return int64(h) })
	reg.Gauge("cache_misses", func() int64 { _, m := e.CacheStats(); return int64(m) })
	reg.Gauge("cache_size", func() int64 { return int64(e.CacheSize()) })
	reg.Gauge("shard_sharded_ops", func() int64 { return e.ShardStats().ShardedOps })
	reg.Gauge("shard_fallback_ops", func() int64 { return e.ShardStats().FallbackOps })
	reg.Gauge("shard_reused_rows", func() int64 { return e.ShardStats().ReusedRows })
	reg.Gauge("shard_exchanged_rows", func() int64 { return e.ShardStats().ExchangedRows })
	reg.Gauge("shard_broadcast_ops", func() int64 { return e.ShardStats().BroadcastOps })
	reg.Gauge("shard_skew_splits", func() int64 { return e.ShardStats().SkewSplits })
	reg.Gauge("stream_batches", func() int64 { return e.StreamStats().BatchesProduced })
	reg.Gauge("stream_rows", func() int64 { return e.StreamStats().RowsStreamed })
	reg.Gauge("stream_buffered_fallbacks", func() int64 { return e.StreamStats().BufferedFallbacks })
	reg.Gauge("stream_bytes_never_materialized", func() int64 { return e.StreamStats().BytesNeverMaterialized })
	reg.Gauge("spill_spilled_shards", func() int64 { return e.SpillStats().SpilledShards })
	reg.Gauge("spill_reloaded_shards", func() int64 { return e.SpillStats().ReloadedShards })
	reg.Gauge("spill_bytes_on_disk", func() int64 { return e.SpillStats().BytesOnDisk })
	reg.Gauge("spill_evictions", func() int64 { return e.SpillStats().Evictions })
	reg.Gauge("spill_pin_waits", func() int64 { return e.SpillStats().PinWaits })
	reg.Gauge("spill_resident_bytes", func() int64 { return e.SpillStats().ResidentBytes })
	reg.Gauge("spill_peak_resident_bytes", func() int64 { return e.SpillStats().PeakResidentBytes })
	reg.Gauge("spill_aux_releases", func() int64 { return e.SpillStats().AuxReleases })
	reg.Gauge("epoch_live", func() int64 { return int64(e.EpochStats().LiveEpoch) })
	reg.Gauge("epoch_active", func() int64 { return int64(e.EpochStats().ActiveEpochs) })
	reg.Gauge("epoch_pinned_readers", func() int64 { return e.EpochStats().PinnedReaders })
	reg.Gauge("epoch_commits", func() int64 { return e.commits.Load() })
	reg.Gauge("epoch_retired", func() int64 { return e.retiredEps.Load() })
	reg.Gauge("epoch_swept_buffers", func() int64 { return e.sweptBufs.Load() })
	reg.Gauge("epoch_swept_bytes", func() int64 { return e.sweptBytes.Load() })
	reg.Gauge("epoch_incremental_memos", func() int64 { return e.incMemos.Load() })
	reg.Gauge("epoch_rebuilt_relations", func() int64 { return e.rebuiltRels.Load() })
	reg.Gauge("epoch_compactions", func() int64 { return e.compactions.Load() })
	reg.Gauge("epoch_dict_len", func() int64 { return int64(e.dict.Load().Len()) })
	if e.metrics.CompareAndSwap(nil, ms) {
		return ms
	}
	return e.metrics.Load()
}

// observeTrace feeds the trace-derived histograms; a no-op until Metrics
// has been called once.
func (e *Engine) observeTrace(t *Trace, pv *tracedPrivate) {
	ms := e.metrics.Load()
	if ms == nil || t == nil {
		return
	}
	ms.latency.Observe(int64(t.Duration))
	ms.peakRows.Observe(peakRows(t.Root))
	ms.spillBytes.Observe(pv.scope.Events().SpilledBytes)
}

// peakRows is the largest per-span output row count in the tree — the
// observed peak intermediate size the paper's bounds cap.
func peakRows(s *TraceSpan) int64 {
	if s == nil {
		return 0
	}
	peak := s.RowsOut()
	for _, c := range s.Children() {
		if p := peakRows(c); p > peak {
			peak = p
		}
	}
	return peak
}
