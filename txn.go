package cqbound

// Transactional ingest with epoch-based snapshot isolation.
//
// Writers stage per-relation deltas in a Txn and publish the next epoch
// atomically at Commit; readers pin an epoch — explicitly with Snapshot,
// or implicitly for the duration of an Evaluate over an epoch database —
// and always see a frozen, consistent view. Commits are serialized (txMu),
// but never block readers: a committed batch EXTENDS the published
// relations into frozen successor versions (internal/relation.Extend)
// whose columns reuse the base's backing arrays, and derives the
// successors' memoized hash indexes, statistics and shard partitions from
// the base's plus the delta (ExtendMemos, shard.ExtendPartitions) instead
// of invalidate-and-rebuild.
//
// When an epoch falls out of the retention window (WithEpochRetention) and
// its last reader unpins, the retirement sweep reclaims everything only
// that epoch could reach: governed memo shards leave the spill governor's
// registry (and their segment files leave the disk), and per-epoch plan
// cache entries are pruned. Dict compaction (Engine.Compact) is the
// analogous reclamation for the string table: it rewrites surviving IDs
// against a fresh dictionary and publishes the result as a new epoch.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cqbound/internal/database"
	"cqbound/internal/relation"
	"cqbound/internal/shard"
)

// WithEpochRetention keeps the n most recent committed epochs alive even
// when unpinned (default and minimum 1: only the live epoch survives
// unpinned). Retention above 1 lets readers that resolve a Snapshot
// slightly after a burst of commits still find their epoch's buffers warm;
// everything older retires as soon as its last reader unpins.
func WithEpochRetention(n int) Option {
	return func(e *Engine) {
		e.retention = n
	}
}

// epochState tracks one published epoch: its immutable database snapshot,
// the reader pin count, and whether the epoch has fallen out of the
// retention window (retired epochs are reclaimed once their pins drain).
// retired is guarded by Engine.epochMu; pins is atomic because unpinning
// must not take the lock on the hot path.
type epochState struct {
	epoch   uint64
	db      *database.Database
	pins    atomic.Int64
	retired bool
}

// Dict returns the engine's private dictionary: every value ingested
// through a transaction is interned here. Use it to pre-intern Values for
// Txn.Append/Retract, or to resolve values of an evaluation result over an
// epoch snapshot (Relation.String and Tuple.StringsIn do it for you).
func (e *Engine) Dict() *relation.Dict { return e.dict.Load() }

// parkableDict is the spill governor's last-resort victim under
// WithDictSpill: the engine's own dictionary once ingest has populated it,
// else the process-wide default (an engine evaluating only free-standing
// databases stores its strings there).
func (e *Engine) parkableDict() *relation.Dict {
	if d := e.dict.Load(); d.Len() > 0 {
		return d
	}
	return relation.DefaultDict()
}

// Snapshot is a pinned reference to one epoch's database: the epoch's
// buffers outlive the retention window until Close. The zero value is not
// meaningful; obtain one from Engine.Snapshot.
type Snapshot struct {
	e    *Engine
	st   *epochState
	once sync.Once
}

// DB returns the frozen database of the pinned epoch. It remains valid
// until Close; evaluating it after Close races the retirement sweep.
func (s *Snapshot) DB() *Database { return s.st.db }

// Epoch returns the pinned epoch number.
func (s *Snapshot) Epoch() uint64 { return s.st.epoch }

// Close releases the pin. Idempotent.
func (s *Snapshot) Close() {
	s.once.Do(func() {
		s.e.unpinEpoch(s.st)
	})
}

// Snapshot pins the live epoch and returns it: the reader-side anchor for
// evaluating several queries against one consistent state while writers
// keep committing. Always Close it.
func (e *Engine) Snapshot() *Snapshot {
	e.epochMu.Lock()
	st := e.live
	st.pins.Add(1)
	e.epochMu.Unlock()
	return &Snapshot{e: e, st: st}
}

// LiveEpoch returns the most recently committed epoch number.
func (e *Engine) LiveEpoch() uint64 {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	return e.live.epoch
}

// pinEpoch pins the epoch owning db for the duration of an evaluation.
// Free-standing databases (epoch 0) and snapshots of other engines pin
// nothing. The lookup and the increment share the lock with the sweep's
// pins check, so a pinned epoch is never reclaimed mid-evaluation.
func (e *Engine) pinEpoch(db *Database) *epochState {
	if db == nil || db.Epoch() == 0 {
		return nil
	}
	e.epochMu.Lock()
	defer e.epochMu.Unlock()
	st := e.byDB[db]
	if st != nil {
		st.pins.Add(1)
	}
	return st
}

// unpinEpoch releases a pin; draining the last pin triggers a sweep in
// case the epoch retired while the reader ran.
func (e *Engine) unpinEpoch(st *epochState) {
	if st.pins.Add(-1) == 0 {
		e.sweep()
	}
}

// Txn stages a batch of per-relation deltas: relation creations, tuple
// appends and tuple retractions. Nothing is visible to readers until
// Commit publishes the whole batch as the next epoch. A Txn is not safe
// for concurrent use; stage from one goroutine (multiple goroutines each
// own their own Txn — commits serialize in the engine).
type Txn struct {
	e       *Engine
	done    bool
	creates []txnCreate
	order   []string // touched relation names, first-touch order
	touched map[string]bool
	adds    map[string][]Tuple
	rets    map[string][]Tuple
}

type txnCreate struct {
	name  string
	attrs []string
}

// Begin starts a transaction. Begin itself is cheap and never blocks on
// other writers; contention happens at Commit.
func (e *Engine) Begin() *Txn {
	return &Txn{
		e:       e,
		touched: make(map[string]bool),
		adds:    make(map[string][]Tuple),
		rets:    make(map[string][]Tuple),
	}
}

func (t *Txn) touch(name string) {
	if !t.touched[name] {
		t.touched[name] = true
		t.order = append(t.order, name)
	}
}

// Create stages a new relation with the given attribute names. The
// relation exists (empty, plus any tuples staged for it in this Txn) once
// the transaction commits; committing fails if the name is already taken.
func (t *Txn) Create(name string, attrs ...string) error {
	if t.done {
		return errTxnDone
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a] {
			return fmt.Errorf("cqbound: duplicate attribute %q in %s", a, name)
		}
		seen[a] = true
	}
	for _, c := range t.creates {
		if c.name == name {
			return fmt.Errorf("cqbound: relation %s created twice in one transaction", name)
		}
	}
	t.creates = append(t.creates, txnCreate{name: name, attrs: append([]string(nil), attrs...)})
	t.touch(name)
	return nil
}

// Append stages tuples (already interned in the engine's dictionary — see
// Engine.Dict) for insertion into the named relation. Duplicates of rows
// already stored, and duplicates within the batch, are dropped at commit
// (set semantics).
func (t *Txn) Append(rel string, tuples ...Tuple) error {
	if t.done {
		return errTxnDone
	}
	for _, tp := range tuples {
		t.adds[rel] = append(t.adds[rel], tp.Clone())
	}
	t.touch(rel)
	return nil
}

// Add interns the strings in the engine's dictionary and stages them as
// one appended tuple — the string-boundary form of Append.
func (t *Txn) Add(rel string, vals ...string) error {
	if t.done {
		return errTxnDone
	}
	d := t.e.dict.Load()
	tp := make(Tuple, len(vals))
	for i, s := range vals {
		tp[i] = d.Intern(s)
	}
	t.adds[rel] = append(t.adds[rel], tp)
	t.touch(rel)
	return nil
}

// Retract stages tuples for removal from the named relation. Retraction
// applies to the state the commit builds on: a retracted tuple that is
// also staged by Append in the same transaction ends up present (retract,
// then append). Retracting an absent tuple is a no-op.
func (t *Txn) Retract(rel string, tuples ...Tuple) error {
	if t.done {
		return errTxnDone
	}
	for _, tp := range tuples {
		t.rets[rel] = append(t.rets[rel], tp.Clone())
	}
	t.touch(rel)
	return nil
}

// Remove is the string-boundary form of Retract. Strings that were never
// interned cannot name a stored tuple, so they make the retraction a
// guaranteed no-op rather than growing the dictionary.
func (t *Txn) Remove(rel string, vals ...string) error {
	if t.done {
		return errTxnDone
	}
	d := t.e.dict.Load()
	tp := make(Tuple, len(vals))
	for i, s := range vals {
		v, ok := d.Lookup(s)
		if !ok {
			return nil
		}
		tp[i] = v
	}
	t.rets[rel] = append(t.rets[rel], tp)
	t.touch(rel)
	return nil
}

// Abort discards the staged batch; the Txn is dead afterwards.
func (t *Txn) Abort() { t.done = true }

var errTxnDone = fmt.Errorf("cqbound: transaction already committed or aborted")

// Commit validates the staged batch against the live epoch and publishes
// it atomically as the next epoch, returning the new epoch number. The
// whole batch lands or none of it: validation (unknown relations,
// duplicate creations, arity mismatches) happens before any state
// changes. Readers holding an older epoch are untouched; epochs that fall
// out of the retention window retire, and their unreachable buffers are
// reclaimed once unpinned. An empty (or fully deduplicated) batch
// publishes nothing and returns the current epoch.
func (t *Txn) Commit() (uint64, error) {
	if t.done {
		return 0, errTxnDone
	}
	t.done = true
	e := t.e
	e.txMu.Lock()
	defer e.txMu.Unlock()

	// live only changes under txMu, so this read is stable for the commit.
	e.epochMu.Lock()
	base := e.live.db
	nextEpoch := e.live.epoch + 1
	e.epochMu.Unlock()

	created := make(map[string][]string, len(t.creates))
	for _, c := range t.creates {
		if base.Relation(c.name) != nil {
			return 0, fmt.Errorf("cqbound: relation %s already exists", c.name)
		}
		created[c.name] = c.attrs
	}
	arities := make(map[string]int, len(t.order))
	for _, name := range t.order {
		if attrs, ok := created[name]; ok {
			arities[name] = len(attrs)
		} else if br := base.Relation(name); br != nil {
			arities[name] = br.Arity()
		} else {
			return 0, fmt.Errorf("cqbound: transaction touches unknown relation %s", name)
		}
		for _, tp := range t.adds[name] {
			if len(tp) != arities[name] {
				return 0, fmt.Errorf("cqbound: relation %s: appended tuple arity %d != %d", name, len(tp), arities[name])
			}
		}
		for _, tp := range t.rets[name] {
			if len(tp) != arities[name] {
				return 0, fmt.Errorf("cqbound: relation %s: retracted tuple arity %d != %d", name, len(tp), arities[name])
			}
		}
	}

	// Validation passed; from here every step is infallible.
	dict := e.dict.Load()
	replace := make(map[string]*relation.Relation, len(t.order))
	for _, name := range t.order {
		if attrs, ok := created[name]; ok {
			nr := relation.NewIn(name, dict, attrs...)
			m := relation.Dedup{}
			final, _ := nr.Extend(dedupAdds(m, 0, t.adds[name]))
			replace[name] = final
			e.dedup[name] = m
			continue
		}
		br := base.Relation(name)
		m := e.dedup[name]
		if m == nil {
			m = br.NewDedup()
		}
		drop := make(map[int32]bool)
		for _, tp := range t.rets[name] {
			if row, ok := m.Row(tp); ok {
				drop[row] = true
			}
		}
		if len(drop) > 0 {
			// Retraction path: rebuild the chain from the surviving rows.
			// O(n) by design — retractions are the rare operation — and the
			// fresh version starts a new Extend chain with fresh memos.
			keep := make([]int32, 0, br.Size()-len(drop))
			for i := 0; i < br.Size(); i++ {
				if !drop[int32(i)] {
					keep = append(keep, int32(i))
				}
			}
			nr := br.Gather(name, keep)
			m = nr.NewDedup()
			final, _ := nr.Extend(dedupAdds(m, nr.Size(), t.adds[name]))
			replace[name] = final
			e.dedup[name] = m
			e.rebuiltRels.Add(1)
			continue
		}
		newAdds := dedupAdds(m, br.Size(), t.adds[name])
		if len(newAdds) == 0 {
			e.dedup[name] = m
			continue // batch was a no-op for this relation
		}
		// Append path: the successor extends the base in place (old readers
		// are bounded by their own row counts) and inherits its memoized
		// indexes, statistics and partitions incrementally.
		next, _ := br.Extend(newAdds)
		inc := br.ExtendMemos(next)
		inc += shard.ExtendPartitions(br, next, e.spill)
		e.incMemos.Add(int64(inc))
		replace[name] = next
		e.dedup[name] = m
	}

	if len(replace) == 0 {
		return nextEpoch - 1, nil
	}
	e.publish(nextEpoch, base.Next(nextEpoch, replace))
	return nextEpoch, nil
}

// dedupAdds filters staged tuples against the writer-owned dedup map,
// recording accepted tuples at consecutive rows from nextRow. Set
// semantics for the whole chain: duplicates of stored rows and duplicates
// within the batch both drop.
func dedupAdds(m relation.Dedup, nextRow int, adds []Tuple) []Tuple {
	out := make([]Tuple, 0, len(adds))
	for _, tp := range adds {
		k := tp.Key()
		if _, dup := m[k]; dup {
			continue
		}
		m[k] = int32(nextRow + len(out))
		out = append(out, tp)
	}
	return out
}

// publish installs db as the live epoch, retires epochs beyond the
// retention window, and sweeps. Caller holds txMu.
func (e *Engine) publish(epoch uint64, db *database.Database) {
	st := &epochState{epoch: epoch, db: db}
	e.epochMu.Lock()
	e.epochs = append(e.epochs, st)
	e.live = st
	e.byDB[db] = st
	for i := 0; i < len(e.epochs)-e.retention; i++ {
		e.epochs[i].retired = true
	}
	e.epochMu.Unlock()
	e.commits.Add(1)
	e.sweep()
}

// sweep reclaims every retired epoch with no pinned readers: its database
// leaves the lookup table, its per-epoch plan cache entries are pruned,
// and every governed buffer reachable ONLY from swept epochs — orphaned
// memo shards included, stale ones especially — is discarded from the
// spill governor, deleting its segment file if parked. Buffers shared
// with a surviving epoch (untouched shards carried over by pointer) are
// left alone. Sweeps run at publish time and when a reader's last pin
// drains; both entry points are cheap when nothing retired.
func (e *Engine) sweep() {
	e.epochMu.Lock()
	var swept []*epochState
	for _, st := range e.epochs {
		if st.retired && st.pins.Load() == 0 {
			swept = append(swept, st)
		}
	}
	if swept == nil {
		e.epochMu.Unlock()
		return
	}
	keep := make([]*epochState, 0, len(e.epochs)-len(swept))
	for _, st := range e.epochs {
		if st.retired && st.pins.Load() == 0 {
			delete(e.byDB, st.db)
		} else {
			keep = append(keep, st)
		}
	}
	e.epochs = keep
	survivors := append([]*epochState(nil), keep...)
	e.epochMu.Unlock()

	reachable := make(map[relation.ColumnBuffer]bool)
	for _, st := range survivors {
		collectBuffers(st.db, reachable)
	}
	for _, st := range swept {
		candidates := make(map[relation.ColumnBuffer]bool)
		collectBuffers(st.db, candidates)
		for b := range candidates {
			if reachable[b] {
				continue
			}
			e.sweptBufs.Add(1)
			e.sweptBytes.Add(b.Bytes())
			b.Discard()
		}
		e.retiredEps.Add(1)
		e.prunePlans(st.epoch)
	}
}

// collectBuffers adds every governed column buffer reachable from db to
// the set: the relations' own buffers plus every relation held in a memo
// entry — partition shards, valid AND stale. Stale partition memos are
// the buffers the pre-epoch engine leaked: invalidated by an insert,
// invisible to every reader, but still registered with the governor.
func collectBuffers(db *database.Database, into map[relation.ColumnBuffer]bool) {
	add := func(r *relation.Relation) {
		if b := r.Buffer(); b != nil {
			into[b] = true
		}
	}
	for _, name := range db.Names() {
		r := db.Relation(name)
		add(r)
		r.EachMemo(func(_ string, v any, _ bool) bool {
			switch val := v.(type) {
			case []*relation.Relation:
				for _, sh := range val {
					add(sh)
				}
			case *relation.Relation:
				add(val)
			}
			return true
		})
	}
}

// prunePlans drops the retired epoch's (query, epoch) plan cache entries.
// The NUL in the suffix keeps "@7" from matching epoch 17's entries.
func (e *Engine) prunePlans(epoch uint64) {
	suffix := epochKeySuffix(epoch)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, k := range e.plans.Keys() {
		if len(k) >= len(suffix) && k[len(k)-len(suffix):] == suffix {
			e.plans.Remove(k)
		}
	}
}

// Compact rewrites the live epoch against a fresh dictionary holding only
// the strings its relations still reference, publishing the result as a
// new epoch: the string-table counterpart of the buffer sweep, for
// long-lived servers whose ingest-and-retract traffic would otherwise
// grow the dictionary monotonically. Older epochs keep resolving through
// the previous dictionary, so pinned readers stay printable; the old
// table is garbage once they drain. Memoized structures are value-
// dependent and do not survive the ID rewrite — the relations republish
// with cold memos — so Compact is a maintenance operation for quiet
// moments, not a per-batch step.
func (e *Engine) Compact() (uint64, error) {
	e.txMu.Lock()
	defer e.txMu.Unlock()
	e.epochMu.Lock()
	base := e.live.db
	nextEpoch := e.live.epoch + 1
	e.epochMu.Unlock()

	old := e.dict.Load()
	used := make([]bool, old.Len())
	for _, name := range base.Names() {
		r := base.Relation(name)
		for c := 0; c < r.Arity(); c++ {
			for _, v := range r.Column(c) {
				if int(v) < len(used) {
					used[v] = true
				}
			}
		}
	}
	nd, remap := old.CompactInto(used)
	fresh := database.NewIn(nd)
	for _, name := range base.Names() {
		r := base.Relation(name)
		cols := make([][]relation.Value, r.Arity())
		for c := range cols {
			src := r.Column(c)
			col := make([]relation.Value, len(src))
			for i, v := range src {
				if int(v) < len(remap) {
					col[i] = remap[v]
				}
			}
			cols[c] = col
		}
		nr := relation.NewFromColumns(name, append([]string(nil), r.Attrs...), cols)
		nr.AdoptDict(nd)
		nr.Freeze()
		fresh.MustAdd(nr)
	}
	e.dict.Store(nd)
	// Writer dedup maps key on packed IDs; the rewrite invalidated them.
	e.dedup = make(map[string]relation.Dedup)
	e.compactions.Add(1)
	e.publish(nextEpoch, fresh.Next(nextEpoch, nil))
	return nextEpoch, nil
}

// EpochStats is a point-in-time copy of the engine's transactional-store
// state and lifecycle counters.
type EpochStats struct {
	// LiveEpoch is the most recently committed epoch number; ActiveEpochs
	// counts epochs not yet reclaimed (live, retained, or still pinned),
	// and PinnedReaders sums their pins.
	LiveEpoch     uint64
	ActiveEpochs  int
	PinnedReaders int64
	// Commits counts published batches (Compact included); RetiredEpochs
	// counts epochs fully reclaimed by the sweep.
	Commits       int64
	RetiredEpochs int64
	// SweptBuffers / SweptBytes total the governed buffers (and their
	// bytes) the retirement sweep discarded from the spill governor.
	SweptBuffers int64
	SweptBytes   int64
	// IncrementalMemos counts memoized indexes, statistics and partitions
	// derived from a base version instead of rebuilt; RebuiltRelations
	// counts retraction-path chain rebuilds.
	IncrementalMemos int64
	RebuiltRelations int64
	// Compactions counts dictionary compactions; DictLen is the engine
	// dictionary's current entry count.
	Compactions int64
	DictLen     int
}

// EpochStats reports the transactional store's current state and what the
// epoch lifecycle has done since the engine was built.
func (e *Engine) EpochStats() EpochStats {
	s := EpochStats{
		Commits:          e.commits.Load(),
		RetiredEpochs:    e.retiredEps.Load(),
		SweptBuffers:     e.sweptBufs.Load(),
		SweptBytes:       e.sweptBytes.Load(),
		IncrementalMemos: e.incMemos.Load(),
		RebuiltRelations: e.rebuiltRels.Load(),
		Compactions:      e.compactions.Load(),
		DictLen:          e.dict.Load().Len(),
	}
	e.epochMu.Lock()
	s.LiveEpoch = e.live.epoch
	s.ActiveEpochs = len(e.epochs)
	for _, st := range e.epochs {
		s.PinnedReaders += st.pins.Load()
	}
	e.epochMu.Unlock()
	return s
}
